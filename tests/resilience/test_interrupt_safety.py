"""Interrupt safety: a KeyboardInterrupt at any fault point mid-round
leaves the module either fully rolled back or fully advanced.

The invariant is checked two ways: the module still passes the full
lint (no dangling references, no torn blocks), and its instruction
count is exactly one of the round-boundary counts of an uninterrupted
reference run — never a half-applied batch in between.
"""

import pytest

from repro.pa.driver import PAConfig, run_pa
from repro.resilience.faultinject import arm
from repro.verify.lint import lint_module
from repro.workloads import compile_workload

WORKLOAD = "crc"

#: every fault point a round passes through, armed in interrupt mode;
#: extract.candidate:2 fires *between* rewrites of one batch — the
#: half-applied-round case the rollback exists for.
INTERRUPT_SPECS = [
    "mine.pass:interrupt",
    "mine.pass:interrupt:2",
    "mine.search:interrupt:100",
    "mine.filter:interrupt",
    "mis.solve:interrupt:3",
    "extract.apply:interrupt",
    "extract.apply:interrupt:2",
    "extract.candidate:interrupt:2",
    "verify.round:interrupt",
]


def _config(**overrides):
    return PAConfig(max_nodes=4, **overrides)


@pytest.fixture(scope="module")
def reference():
    """Uninterrupted run + the set of legal round-boundary counts."""
    module = compile_workload(WORKLOAD)
    before = module.num_instructions
    result = run_pa(module, _config())
    boundaries = {before}
    running = before
    for round_index in range(result.rounds):
        running -= sum(r.benefit for r in result.records
                       if r.round == round_index)
        boundaries.add(running)
    assert module.num_instructions in boundaries
    return boundaries


@pytest.mark.parametrize("spec", INTERRUPT_SPECS)
def test_interrupt_leaves_consistent_module(spec, reference):
    module = compile_workload(WORKLOAD)
    arm(spec)
    config = _config(verify=spec.startswith("verify."))
    result = run_pa(module, config)     # must not raise
    if result.rolled_back_rounds or result.degraded:
        assert "interrupted" in result.degraded_reasons
    report = lint_module(module)
    assert report.ok, f"{spec}: lint broke: {report.render()}"
    assert module.num_instructions in reference, (
        f"{spec}: {module.num_instructions} is not a round boundary "
        f"({sorted(reference)})"
    )


def test_interrupted_result_is_best_so_far():
    module = compile_workload(WORKLOAD)
    arm("extract.apply:interrupt:2")
    result = run_pa(module, _config())
    # round 0 committed before the interrupt hit round 1
    assert result.rounds == 1
    assert result.degraded
    assert result.degraded_reasons == ["interrupted"]
    assert result.saved > 0
    assert result.rolled_back_rounds == 1


def test_interrupt_before_any_round_commits():
    module = compile_workload(WORKLOAD)
    before = module.num_instructions
    arm("mine.pass:interrupt")          # fires in round 0's first pass
    result = run_pa(module, _config())
    assert result.rounds == 0
    assert module.num_instructions == before
    assert result.degraded
