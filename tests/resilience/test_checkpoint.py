"""Checkpoint serialization: atomicity, validation, round rollback."""

import json

import pytest

from repro.pa.driver import PAConfig, config_from_dict, config_to_dict
from repro.resilience.checkpoint import (
    CKPT_SCHEMA,
    Checkpoint,
    capture_state,
    load_checkpoint,
    module_from_checkpoint,
    restore_state,
    write_checkpoint,
)
from repro.resilience.errors import CheckpointError
from repro.resilience.faultinject import arm
from tests.conftest import SHARED_FRAGMENT_PROGRAM, module_from_source


@pytest.fixture
def module():
    return module_from_source(SHARED_FRAGMENT_PROGRAM)


def _checkpoint_for(module, round_index=0):
    return Checkpoint(
        round=round_index,
        asm=module.render(),
        entry=module.entry,
        fresh=module._fresh,
        config=config_to_dict(PAConfig()),
        pa_exempt=sorted(
            f.name for f in module.functions if f.pa_exempt
        ),
        instructions_before=module.num_instructions,
    )


# ----------------------------------------------------------------------
# in-memory rollback
# ----------------------------------------------------------------------
def test_capture_restore_roundtrip(module):
    state = capture_state(module)
    reference = module.render()
    # mutate: drop an instruction and bump the label counter
    module.fresh_label("pa")
    del module.functions[1].blocks[0].instructions[-1]
    assert module.render() != reference
    restore_state(module, state)
    assert module.render() == reference
    # the fresh counter rolled back too: the next label is the same one
    before = capture_state(module)
    assert module.fresh_label("pa") == "pa_0"
    restore_state(module, before)


def test_restore_is_idempotent(module):
    state = capture_state(module)
    reference = module.render()
    restore_state(module, state)
    restore_state(module, state)
    assert module.render() == reference


# ----------------------------------------------------------------------
# on-disk round trip
# ----------------------------------------------------------------------
def test_write_load_roundtrip(tmp_path, module):
    path = str(tmp_path / "ck.json")
    write_checkpoint(path, _checkpoint_for(module, round_index=3))
    loaded = load_checkpoint(path)
    assert loaded.round == 3
    assert loaded.asm == module.render()
    assert loaded.fresh == module._fresh
    revived = module_from_checkpoint(loaded)
    assert revived.render() == module.render()
    assert revived._fresh == module._fresh


def test_config_roundtrip():
    config = PAConfig(miner="dgspan", max_nodes=5, verify=True,
                      time_budget=None)
    revived = config_from_dict(config_to_dict(config))
    assert revived == config


def test_config_from_dict_drops_unknown_keys():
    data = config_to_dict(PAConfig())
    data["from_the_future"] = 42
    assert config_from_dict(data) == PAConfig()


def test_missing_file_is_typed(tmp_path):
    with pytest.raises(CheckpointError, match="no checkpoint"):
        load_checkpoint(str(tmp_path / "nope.json"))


def test_garbage_file_is_typed(tmp_path):
    path = tmp_path / "ck.json"
    path.write_text("not json {{{")
    with pytest.raises(CheckpointError, match="cannot read"):
        load_checkpoint(str(path))


def test_wrong_schema_rejected(tmp_path, module):
    path = tmp_path / "ck.json"
    doc = _checkpoint_for(module).to_doc()
    doc["schema"] = "repro.resilience.ckpt/99"
    path.write_text(json.dumps(doc))
    with pytest.raises(CheckpointError, match="unsupported"):
        load_checkpoint(str(path))


def test_missing_fields_rejected(tmp_path):
    path = tmp_path / "ck.json"
    path.write_text(json.dumps({"schema": CKPT_SCHEMA, "round": 1}))
    with pytest.raises(CheckpointError, match="missing fields"):
        load_checkpoint(str(path))


def test_unknown_additive_fields_ignored(tmp_path, module):
    path = tmp_path / "ck.json"
    doc = _checkpoint_for(module).to_doc()
    doc["added_in_a_newer_minor"] = {"x": 1}
    path.write_text(json.dumps(doc))
    assert load_checkpoint(str(path)).round == 0


def test_corrupt_fault_garbles_payload(tmp_path, module):
    path = str(tmp_path / "ck.json")
    arm("checkpoint.write:corrupt")
    write_checkpoint(path, _checkpoint_for(module))
    # the write itself stayed atomic — the file exists, but its payload
    # is garbage the loader must reject with a typed error
    with pytest.raises(CheckpointError, match="cannot read"):
        load_checkpoint(path)


def test_load_fault_point(tmp_path, module):
    path = str(tmp_path / "ck.json")
    write_checkpoint(path, _checkpoint_for(module))
    from repro.resilience.errors import FaultInjected

    arm("checkpoint.load")
    with pytest.raises(FaultInjected):
        load_checkpoint(path)
