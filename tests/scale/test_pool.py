"""The sharded round engine: deterministic merge regardless of worker
count, governor-aware teardown with per-shard salvage, the
``scale.pool`` fault point, and scale-mode driver semantics (carryover
off, counters populated, checkpoint/resume continuity)."""

import pytest

from repro.dfg.builder import build_dfgs
from repro.pa.driver import PAConfig, run_pa
from repro.resilience import faultinject
from repro.resilience.checkpoint import load_checkpoint
from repro.resilience.faultinject import FaultInjected
from repro.resilience.governor import RunGovernor
from repro.scale.cache import FragmentCache
from repro.scale.delta import DeltaPlanner
from repro.scale.pool import run_sharded_round
from repro.workloads import compile_workload


def test_round_is_deterministic_and_sorted():
    config = PAConfig(max_nodes=4, workers=1)
    module = compile_workload("crc")
    first, stats = run_sharded_round(
        module, config, RunGovernor(), FragmentCache()
    )
    second, _ = run_sharded_round(
        module, config, RunGovernor(), FragmentCache()
    )
    assert [c.sort_key() for c in first] == sorted(
        c.sort_key() for c in first
    )
    assert [c.sort_key() for c in first] == \
        [c.sort_key() for c in second]
    assert stats.shards > 1
    assert stats.cache_misses == stats.shards


def test_cache_serves_second_round_identically():
    config = PAConfig(max_nodes=4, workers=1)
    module = compile_workload("crc")
    cache = FragmentCache()
    cold, cold_stats = run_sharded_round(
        module, config, RunGovernor(), cache
    )
    warm, warm_stats = run_sharded_round(
        module, config, RunGovernor(), cache
    )
    assert warm_stats.cache_hits == warm_stats.shards
    assert warm_stats.cache_misses == 0
    assert warm_stats.lattice_nodes_reused > 0
    assert [c.sort_key() for c in cold] == [c.sort_key() for c in warm]


def test_delta_planner_sees_second_round_clean():
    config = PAConfig(max_nodes=4, workers=1)
    module = compile_workload("crc")
    cache, planner = FragmentCache(), DeltaPlanner()
    _, first = run_sharded_round(
        module, config, RunGovernor(), cache, planner
    )
    _, second = run_sharded_round(
        module, config, RunGovernor(), cache, planner
    )
    assert first.delta_dirty == first.shards
    assert second.delta_clean == second.shards
    assert second.delta_dirty == 0


def test_expired_governor_salvages_cached_shards():
    """A governor that is already out of budget loses the un-mined
    shards but keeps every cache-served one — per-shard best-so-far."""
    config = PAConfig(max_nodes=4, workers=1)
    module = compile_workload("crc")
    cache = FragmentCache()
    run_sharded_round(module, config, RunGovernor(), cache)

    expired = RunGovernor()
    expired.force_expire()
    assert expired.should_stop()
    candidates, stats = run_sharded_round(module, config, expired, cache)
    assert stats.cache_hits == stats.shards
    assert stats.shards_lost == 0
    assert candidates

    cold = RunGovernor()
    cold.force_expire()
    lost_candidates, lost_stats = run_sharded_round(
        module, config, cold, FragmentCache()
    )
    assert lost_stats.shards_lost == lost_stats.shards
    assert lost_candidates == []


def test_scale_pool_fault_rolls_back_atomically():
    faultinject.arm("scale.pool:raise")
    module = compile_workload("crc")
    before = module.render()
    with pytest.raises(FaultInjected):
        run_pa(module, PAConfig(max_nodes=4, workers=1))
    assert module.render() == before


def test_scale_pool_deadline_degrades_cleanly():
    """``scale.pool:deadline`` force-expires the governor right before
    pool expansion: the round loses its shards, the run winds down as
    degraded best-so-far instead of crashing."""
    faultinject.arm("scale.pool:deadline")
    module = compile_workload("crc")
    result = run_pa(module, PAConfig(max_nodes=4, workers=1))
    assert result.degraded
    assert "time_budget" in result.degraded_reasons
    assert result.saved == 0
    assert result.shards_lost > 0


def test_scale_pool_interrupt_salvages_best_so_far():
    """An interrupt during pool expansion of round 2 keeps round 1's
    committed extraction (anytime semantics, rolled-back round)."""
    faultinject.arm("scale.pool:interrupt:2")
    module = compile_workload("crc")
    result = run_pa(module, PAConfig(max_nodes=4, workers=1))
    assert result.degraded
    assert "interrupted" in result.degraded_reasons
    assert result.rounds >= 1
    assert result.saved > 0
    assert result.rolled_back_rounds == 1


def test_scale_pool_deadline_tears_down_a_real_pool():
    """Teardown must kill actual worker children.  ``run_pa`` installs
    the governor's graceful SIGTERM handler in the parent; forked
    children inherit it, and unless ``_worker_init`` resets SIGTERM to
    the default action, ``pool.terminate()`` cannot kill them and
    ``pool.join()`` hangs forever (regression: the CLI chaos path
    ``scale.pool:deadline --workers 2`` deadlocked)."""
    faultinject.arm("scale.pool:deadline")
    module = compile_workload("crc")
    result = run_pa(module, PAConfig(max_nodes=4, workers=2))
    assert result.degraded
    assert "time_budget" in result.degraded_reasons
    assert result.saved == 0
    assert result.shards_lost > 0


def test_scale_pool_interrupt_tears_down_a_real_pool():
    """Same inherited-SIGTERM regression, interrupt flavour: round 2's
    pool is terminated mid-expansion and round 1's extraction stays."""
    faultinject.arm("scale.pool:interrupt:2")
    module = compile_workload("crc")
    result = run_pa(module, PAConfig(max_nodes=4, workers=2))
    assert result.degraded
    assert "interrupted" in result.degraded_reasons
    assert result.rounds >= 1
    assert result.saved > 0
    assert result.rolled_back_rounds == 1


def test_multiprocess_matches_in_process():
    config1 = PAConfig(max_nodes=4, workers=1)
    config2 = PAConfig(max_nodes=4, workers=2)
    module1 = compile_workload("crc")
    module2 = compile_workload("crc")
    result1 = run_pa(module1, config1)
    result2 = run_pa(module2, config2)
    assert module1.render() == module2.render()
    assert result1.saved == result2.saved
    assert result1.records == result2.records
    assert result2.workers == 2


def test_scale_counters_populated():
    module = compile_workload("crc")
    result = run_pa(module, PAConfig(max_nodes=4, workers=1))
    assert result.workers == 1
    assert result.shards > 1
    assert result.cache_misses > 0
    assert result.cache_hits > 0          # later rounds reuse shards
    assert result.lattice_nodes_reused > 0
    assert result.lattice_nodes > 0


def test_checkpoint_resume_restores_scale_counters(tmp_path):
    path = str(tmp_path / "ck.json")
    reference = compile_workload("crc")
    run_pa(reference, PAConfig(max_nodes=4, workers=1))

    interrupted = compile_workload("crc")
    run_pa(interrupted, PAConfig(max_nodes=4, workers=1, max_rounds=1,
                                 checkpoint_path=path))
    checkpoint = load_checkpoint(path)
    assert checkpoint.config["workers"] == 1
    assert checkpoint.cache_misses > 0

    from repro.pa.driver import config_from_dict
    from repro.resilience.checkpoint import module_from_checkpoint

    resumed = module_from_checkpoint(checkpoint)
    config = config_from_dict(checkpoint.config)
    config.max_rounds = PAConfig().max_rounds
    config.checkpoint_path = None
    result = run_pa(resumed, config, resume=checkpoint)
    assert resumed.render() == reference.render()
    assert result.cache_misses >= checkpoint.cache_misses


def test_build_dfgs_shape_assumption():
    # the scale engine indexes candidates by position in this database;
    # pin the assumption that it is deterministic for a fixed module
    module = compile_workload("crc")
    first = build_dfgs(module, min_nodes=0)
    second = build_dfgs(module, min_nodes=0)
    assert [d.origin for d in first] == [d.origin for d in second]
