"""Observability of the sharded engine, end to end: cross-process
trace stitching, worker-count instrumentation parity, progress-bus
integration, graceful chaos degradation, and the disabled-inert
bit-identity guard (observability off => byte-identical output)."""

import json
import os

import pytest

from repro import telemetry
from repro.pa.driver import PAConfig, run_pa
from repro.resilience import faultinject
from repro.telemetry import chrome_trace, progress
from repro.telemetry.progress import EVENTS_SCHEMA, ProgressBus
from repro.workloads import PROGRAMS, compile_workload


@pytest.fixture
def registry():
    telemetry.reset()
    telemetry.enable()
    yield telemetry.get()
    telemetry.disable()
    telemetry.reset()


def run_crc(workers, max_nodes=4):
    module = compile_workload("crc")
    result = run_pa(module, PAConfig(max_nodes=max_nodes,
                                     workers=workers))
    return module, result


class TestCrossProcessTrace:
    def test_worker_spans_stitched_with_real_pids(self, registry):
        __, result = run_crc(workers=2)
        assert result.saved > 0
        pids = {record.pid for record in registry.spans}
        assert 0 in pids, "parent spans keep pid 0 (local)"
        worker_pids = pids - {0}
        assert worker_pids, "worker spans must carry their real pid"
        assert os.getpid() not in worker_pids
        # intra-shard mining spans came through the stitch
        names = {record.name for record in registry.spans}
        assert "scale.shard.mine" in names
        assert registry.counter_value("mining.lattice_nodes") > 0
        assert "scale.shard.mine_seconds" in registry.histograms
        for pid in worker_pids:
            assert registry.remote_processes[pid] == "shard-worker"

    def test_chrome_trace_has_named_worker_processes(self, registry):
        run_crc(workers=2)
        events = chrome_trace(registry)
        process_rows = {
            e["pid"]: e["args"]["name"] for e in events
            if e.get("ph") == "M" and e.get("name") == "process_name"
        }
        assert len(process_rows) >= 2
        assert process_rows[os.getpid()] == "repro"
        assert "shard-worker" in process_rows.values()

    def test_worker_spans_nest_under_scale_mine(self, registry):
        run_crc(workers=2)
        by_ident = {r.ident: r for r in registry.spans}
        for record in registry.spans:
            if record.name != "scale.shard.mine":
                continue
            assert record.parent is not None
            assert by_ident[record.parent].name == "scale.mine"


class TestInstrumentationParity:
    def test_counters_and_span_counts_match_across_workers(self):
        tallies = {}
        for workers in (1, 2):
            telemetry.reset()
            telemetry.enable()
            try:
                run_crc(workers=workers)
                counters = {
                    name: counter.value for name, counter
                    in telemetry.get().counters.items()
                }
                spans = {}
                for record in telemetry.get().spans:
                    spans[record.name] = spans.get(record.name, 0) + 1
                tallies[workers] = (counters, spans)
            finally:
                telemetry.disable()
                telemetry.reset()
        assert tallies[1][0] == tallies[2][0]
        assert tallies[1][1] == tallies[2][1]


class TestProgressIntegration:
    def test_run_streams_events(self, tmp_path):
        path = tmp_path / "events.jsonl"
        bus = ProgressBus(events_path=str(path))
        with progress.activate(bus):
            __, result = run_crc(workers=2)
        bus.close()
        assert result.saved > 0
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["kind"] == "stream.begin"
        assert lines[0]["schema"] == EVENTS_SCHEMA
        kinds = {l["kind"] for l in lines}
        assert {"round.start", "round.shards", "shard.start",
                "shard.done", "round.done", "run.done"} <= kinds
        worker_pids = {
            l["pid"] for l in lines if l["kind"] == "shard.done"
        }
        assert worker_pids - {os.getpid()}, \
            "shard events must come from worker processes"

    def test_broken_bus_never_breaks_the_run(self, tmp_path, capsys):
        faultinject.arm("scale.progress:raise")
        bus = ProgressBus(events_path=str(tmp_path / "events.jsonl"))
        with progress.activate(bus):
            __, result = run_crc(workers=2)
        bus.close()
        assert bus.broken
        assert result.saved > 0
        assert not result.degraded
        assert "progress stream disabled" in capsys.readouterr().err

    def test_stragglers_surface_on_result(self, tmp_path):
        bus = ProgressBus(events_path=str(tmp_path / "e.jsonl"),
                          stall_after=0.0)
        with progress.activate(bus):
            __, result = run_crc(workers=2)
        bus.close()
        # with a zero threshold every in-flight shard trips the
        # watchdog at least once — and the run still completes
        assert result.stragglers > 0
        assert result.saved > 0


class TestCacheCensus:
    def test_census_lands_on_result_and_counters(self, registry):
        __, result = run_crc(workers=1)
        assert result.cache_census
        assert result.cache_census["misses"] > 0
        for key, value in result.cache_census.items():
            assert registry.counter_value(
                f"scale.cache.census.{key}"
            ) == value


class TestDisabledInert:
    """The bit-identity guard of ISSUE 8: every observability feature
    off => byte-identical modules on all bundled workloads."""

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_observability_never_changes_output(self, name):
        plain = compile_workload(name)
        run_pa(plain, PAConfig(max_nodes=4, workers=2))

        telemetry.reset()
        telemetry.enable()
        bus = ProgressBus()
        try:
            with progress.activate(bus):
                observed = compile_workload(name)
                run_pa(observed, PAConfig(max_nodes=4, workers=2))
        finally:
            bus.close()
            telemetry.disable()
            telemetry.reset()
        assert plain.render() == observed.render()
