"""Fragment cache basics: memory/disk hit accounting, write-through
persistence across instances, and key isolation."""

from repro.scale.cache import FragmentCache

BODY = {"candidates": [], "lattice_nodes": 7, "tallies": {}}
OTHER = {"candidates": [], "lattice_nodes": 9, "tallies": {}}
KEY = "a" * 64
KEY2 = "b" * 64


def test_memory_roundtrip_and_stats():
    cache = FragmentCache()
    assert cache.get(KEY) is None
    assert cache.stats.misses == 1
    cache.put(KEY, BODY)
    assert cache.get(KEY) == BODY
    assert cache.stats.hits == 1
    assert cache.stats.memory_hits == 1
    assert cache.stats.stores == 1
    assert len(cache) == 1


def test_disk_persistence_across_instances(tmp_path):
    first = FragmentCache(str(tmp_path))
    first.put(KEY, BODY)
    second = FragmentCache(str(tmp_path))
    assert second.get(KEY) == BODY
    assert second.stats.disk_hits == 1
    # promoted into memory: the next get does not touch disk again
    assert second.get(KEY) == BODY
    assert second.stats.memory_hits == 1


def test_keys_are_isolated(tmp_path):
    cache = FragmentCache(str(tmp_path))
    cache.put(KEY, BODY)
    cache.put(KEY2, OTHER)
    fresh = FragmentCache(str(tmp_path))
    assert fresh.get(KEY) == BODY
    assert fresh.get(KEY2) == OTHER


def test_memory_only_cache_never_touches_disk():
    cache = FragmentCache(directory=None)
    cache.put(KEY, BODY)
    assert cache.get(KEY) == BODY
    assert cache.directory is None


def test_as_dict_census(tmp_path):
    cache = FragmentCache(str(tmp_path))
    cache.put(KEY, BODY)
    cache.get(KEY)
    cache.get(KEY2)
    census = cache.stats.as_dict()
    assert census["hits"] == 1
    assert census["misses"] == 1
    assert census["stores"] == 1
    assert census["invalid"] == 0
