"""Shared fixtures for the scale suite.

Every test runs with a clean fault-injection registry (a leaked armed
fault would poison unrelated tests in the same process), and helpers
build the small shared-fragment module the pa suite already uses.
"""

import pytest

from repro.resilience import faultinject


@pytest.fixture(autouse=True)
def clean_faults():
    faultinject.disarm_all()
    yield
    faultinject.disarm_all()
