"""Incremental re-mining planner: only shards whose payload digest
changed are predicted dirty, and the prediction matches what actually
happens across the rounds of a real run (an extraction dirties the
shards holding rewritten blocks; renumbering alone dirties nothing)."""

from repro.dfg.builder import build_dfgs
from repro.pa.driver import PAConfig, run_pa
from repro.pa.legality import sp_fragile_functions
from repro.pa.liveness import lr_live_out_blocks
from repro.scale.cluster import cluster_dfgs
from repro.scale.delta import DeltaPlanner
from repro.scale.shard import build_payload
from repro.workloads import compile_workload


def _digests(module, config):
    dfgs = build_dfgs(module, min_nodes=0, mined_kinds=config.mined_kinds)
    lr_live = lr_live_out_blocks(module)
    fragile = sp_fragile_functions(module)
    return [
        build_payload(shard, dfgs, lr_live, fragile, config).digest()
        for shard in cluster_dfgs(dfgs)
    ]


def test_first_plan_is_initial_and_all_dirty():
    planner = DeltaPlanner()
    plan = planner.plan(["d1", "d2", "d3"])
    assert plan.initial
    assert plan.clean == []
    assert plan.dirty == [0, 1, 2]
    assert plan.reuse_fraction == 0.0


def test_unchanged_digests_are_clean():
    planner = DeltaPlanner()
    planner.plan(["d1", "d2", "d3"])
    plan = planner.plan(["d1", "d2", "d3"])
    assert not plan.initial
    assert plan.clean == [0, 1, 2]
    assert plan.dirty == []
    assert plan.reuse_fraction == 1.0


def test_changed_subset_is_dirty_regardless_of_position():
    planner = DeltaPlanner()
    planner.plan(["d1", "d2", "d3"])
    # d2 rewritten to d9, d3 moved to index 1: position is not identity
    plan = planner.plan(["d1", "d3", "d9"])
    assert plan.clean == [0, 1]
    assert plan.dirty == [2]
    assert 0.0 < plan.reuse_fraction < 1.0


def test_empty_round():
    planner = DeltaPlanner()
    plan = planner.plan([])
    assert plan.initial
    assert plan.reuse_fraction == 0.0


def test_extraction_invalidates_only_touched_shards():
    """After one real abstraction round most shard digests survive —
    the incremental rule would have re-mined only the rewritten few."""
    config = PAConfig(max_nodes=4)
    module = compile_workload("crc")
    before = _digests(module, config)
    result = run_pa(module, PAConfig(max_nodes=4, max_rounds=1))
    assert result.rounds == 1
    after = _digests(module, config)
    surviving = set(before) & set(after)
    assert surviving, "an extraction must not rewrite every block"
    # and something did change (the new pa_* function, rewritten sites)
    assert set(after) != set(before)
    planner = DeltaPlanner()
    planner.plan(before)
    plan = planner.plan(after)
    assert plan.clean and plan.dirty
    assert len(plan.clean) >= len(plan.dirty)
