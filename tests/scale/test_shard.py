"""Shard payloads: content digests change exactly when a fact that can
change the shard's mining outcome changes, and the wire format revives
candidates that match in-process mining."""

import dataclasses

from repro.dfg.builder import build_dfgs
from repro.pa.driver import PAConfig
from repro.pa.legality import sp_fragile_functions
from repro.pa.liveness import lr_live_out_blocks
from repro.scale.cluster import cluster_dfgs
from repro.scale.shard import (
    ShardResult,
    build_payload,
    mine_shard,
    revive_candidates,
)
from repro.workloads import compile_workload


def _payloads(name="crc", config=None):
    module = compile_workload(name)
    config = config or PAConfig()
    dfgs = build_dfgs(module, min_nodes=0, mined_kinds=config.mined_kinds)
    lr_live = lr_live_out_blocks(module)
    fragile = sp_fragile_functions(module)
    shards = cluster_dfgs(dfgs)
    payloads = [
        build_payload(shard, dfgs, lr_live, fragile, config)
        for shard in shards
    ]
    return module, dfgs, shards, payloads


def test_digest_is_stable():
    _, _, _, payloads = _payloads()
    again = _payloads()[3]
    assert [p.digest() for p in payloads] == [p.digest() for p in again]


def test_digest_changes_with_instructions():
    _, _, _, payloads = _payloads()
    payload = max(payloads, key=lambda p: sum(map(len, p.block_insns)))
    before = payload.digest()
    mutated = dataclasses.replace(
        payload, block_insns=[list(b) for b in payload.block_insns[:-1]]
    )
    assert mutated.digest() != before


def test_digest_changes_with_lr_and_fragile_facts():
    _, _, _, payloads = _payloads()
    payload = payloads[0]
    flipped = dataclasses.replace(
        payload,
        lr_live=tuple(not flag for flag in payload.lr_live),
    )
    assert flipped.digest() != payload.digest()
    refragiled = dataclasses.replace(
        payload, fragile=payload.fragile + ("some_callee",)
    )
    assert refragiled.digest() != payload.digest()


def test_digest_changes_with_mining_config():
    _, _, _, payloads = _payloads(config=PAConfig(max_nodes=8))
    deeper = _payloads(config=PAConfig(max_nodes=6))[3]
    assert payloads[0].digest() != deeper[0].digest()


def test_digest_ignores_shard_position():
    # Position is not content: after crossjumping renumbers blocks, an
    # untouched cluster keeps its digest (the incremental-invalidation
    # rule depends on this).
    _, _, _, payloads = _payloads()
    payload = payloads[0]
    moved = dataclasses.replace(payload, shard_index=payload.shard_index + 7)
    assert moved.digest() == payload.digest()


def test_mine_and_revive_round_trip():
    module, dfgs, shards, payloads = _payloads("crc")
    mined = False
    for shard, payload in zip(shards, payloads):
        result = mine_shard(payload)
        doc = result.to_doc()
        back = ShardResult.from_doc(result.shard_index, doc)
        assert back.to_doc() == doc
        revived = revive_candidates(dfgs, shard.graph_ids, back.candidates)
        assert len(revived) == len(result.candidates)
        for candidate in revived:
            mined = True
            assert candidate.insns, "revival must re-derive instructions"
            assert candidate.origins, "revival must re-derive origins"
            for embedding in candidate.embeddings:
                assert embedding.graph in shard.graph_ids
    assert mined, "crc must produce at least one shard candidate"
