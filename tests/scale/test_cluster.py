"""Pre-clustering: shards must partition the DFG database, be stable,
and respect the soundness invariant that two blocks sharing any
labelled-edge signature land in the same shard (a frequent connected
fragment of >= 2 nodes contains >= 1 edge, so blocks in different
shards can never support one)."""

import itertools

from repro.dfg.builder import build_dfgs
from repro.scale.cluster import Shard, cluster_dfgs, edge_signatures
from repro.workloads import compile_workload


def _dfgs(name):
    module = compile_workload(name)
    return build_dfgs(module, min_nodes=0)


def test_shards_partition_all_graphs():
    dfgs = _dfgs("crc")
    shards = cluster_dfgs(dfgs)
    seen = [g for shard in shards for g in shard.graph_ids]
    assert sorted(seen) == list(range(len(dfgs)))
    assert len(seen) == len(set(seen))


def test_shared_edge_signature_implies_same_shard():
    dfgs = _dfgs("crc")
    shards = cluster_dfgs(dfgs)
    shard_of = {
        g: shard.index for shard in shards for g in shard.graph_ids
    }
    signatures = [edge_signatures(dfg) for dfg in dfgs]
    for a, b in itertools.combinations(range(len(dfgs)), 2):
        if signatures[a] & signatures[b]:
            assert shard_of[a] == shard_of[b], (
                f"graphs {a} and {b} share an edge signature but sit "
                f"in shards {shard_of[a]} and {shard_of[b]}"
            )


def test_clustering_is_deterministic():
    dfgs = _dfgs("search")
    first = cluster_dfgs(dfgs)
    second = cluster_dfgs(dfgs)
    assert first == second
    # canonical ordering: shards by smallest member, members ascending
    assert [s.index for s in first] == list(range(len(first)))
    for shard in first:
        assert list(shard.graph_ids) == sorted(shard.graph_ids)
    firsts = [shard.graph_ids[0] for shard in first]
    assert firsts == sorted(firsts)


def test_edgeless_graphs_become_singleton_shards():
    dfgs = _dfgs("crc")
    shards = cluster_dfgs(dfgs)
    shard_of = {
        g: shard for shard in shards for g in shard.graph_ids
    }
    for g, dfg in enumerate(dfgs):
        if not edge_signatures(dfg):
            assert shard_of[g].num_graphs == 1


def test_shard_num_nodes():
    dfgs = _dfgs("crc")
    shard = Shard(index=0, graph_ids=(0, 1))
    assert shard.num_nodes(dfgs) == dfgs[0].num_nodes + dfgs[1].num_nodes
    assert shard.num_graphs == 2
