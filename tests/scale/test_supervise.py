"""The supervised shard executor: crashed/hung/poisoned workers are
contained at the shard boundary.  A killed worker is redelivered and
the run stays bit-identical to an undisturbed one; a poisoned shard is
quarantined after bounded retries plus the serial fallback (degraded
run, ``scale.quarantine`` ledger record) or raises the typed
``REPRO-SHARD`` error under ``--strict-shards``; retry counters ride
the checkpoint across a resume."""

import pytest

from repro.cli import main
from repro.pa.driver import PAConfig, config_from_dict, run_pa
from repro.report.ledger import read_jsonl
from repro.resilience import faultinject
from repro.resilience.checkpoint import (
    load_checkpoint,
    module_from_checkpoint,
)
from repro.resilience.errors import EXIT_SHARD, ShardError
from repro.resilience.governor import RunGovernor
from repro.scale.supervise import BACKOFF_BASE, BACKOFF_CAP, _backoff
from repro.workloads import compile_workload


def _config(**overrides):
    return PAConfig(max_nodes=4, **overrides)


# ----------------------------------------------------------------------
# crash: SIGKILL'd workers are redelivered, results bit-identical
# ----------------------------------------------------------------------
def test_crashed_worker_is_redelivered_bit_identically():
    clean = compile_workload("crc")
    reference = run_pa(clean, _config(workers=2))

    faultinject.arm("scale.worker.crash:raise:1")
    crashy = compile_workload("crc")
    result = run_pa(crashy, _config(workers=2))

    assert result.shards_retried >= 1
    assert result.shards_quarantined == 0
    assert not result.degraded
    assert crashy.render() == clean.render()
    assert result.saved == reference.saved
    assert result.records == reference.records


def test_every_delivery_crashing_recovers_via_serial_fallback():
    """``at=0`` crashes *every* dispatch: all shards exhaust their
    budget and the in-parent serial fallback (which never runs worker
    directives) recovers every one — fallbacks > 0, nothing
    quarantined, output still bit-identical."""
    clean = compile_workload("crc")
    run_pa(clean, _config(workers=2))

    faultinject.arm("scale.worker.crash:raise:0")
    crashy = compile_workload("crc")
    result = run_pa(crashy, _config(workers=2, shard_retries=0))

    assert result.shards_quarantined == 0
    assert not result.degraded
    assert crashy.render() == clean.render()


# ----------------------------------------------------------------------
# hang: the soft timeout converts a stuck worker into a redelivery
# ----------------------------------------------------------------------
def test_hung_worker_is_killed_and_redelivered_under_soft_timeout():
    clean = compile_workload("crc")
    run_pa(clean, _config(workers=2))

    faultinject.arm("scale.worker.hang:raise:1")
    hung = compile_workload("crc")
    result = run_pa(hung, _config(workers=2, shard_timeout=1.5))

    assert result.shards_retried >= 1
    assert result.shards_quarantined == 0
    assert hung.render() == clean.render()


# ----------------------------------------------------------------------
# poison: sticky failure -> quarantine (degrade) or strict abort
# ----------------------------------------------------------------------
def test_poisoned_shard_is_quarantined_and_run_degrades():
    faultinject.arm("scale.shard.poison:raise:1")
    module = compile_workload("crc")
    result = run_pa(module, _config(workers=2, shard_retries=1))

    assert result.shards_retried == 1
    assert result.shards_quarantined >= 1
    assert result.degraded
    assert "shards_quarantined" in result.degraded_reasons


def test_serial_path_runs_the_same_quarantine_state_machine():
    faultinject.arm("scale.shard.poison:raise:1")
    module = compile_workload("crc")
    result = run_pa(module, _config(workers=1, shard_retries=1))

    assert result.shards_retried == 1
    assert result.shards_quarantined >= 1
    assert result.degraded
    assert "shards_quarantined" in result.degraded_reasons


def test_strict_shards_raises_typed_error_and_rolls_back():
    faultinject.arm("scale.shard.poison:raise:1")
    module = compile_workload("crc")
    before = module.render()
    with pytest.raises(ShardError) as excinfo:
        run_pa(module, _config(workers=2, shard_retries=0,
                               strict_shards=True))
    assert excinfo.value.code == "REPRO-SHARD"
    assert excinfo.value.exit_code == EXIT_SHARD
    assert module.render() == before


# ----------------------------------------------------------------------
# observability: ledger records and the CLI exit contract
# ----------------------------------------------------------------------
def test_retry_and_quarantine_ledger_records(tmp_path, capsys):
    ledger_out = tmp_path / "ledger.jsonl"
    code = main(["pa", "crc", "--max-nodes", "4", "--workers", "2",
                 "--fault", "scale.shard.poison:raise:1",
                 "--shard-retries", "1",
                 "--ledger-out", str(ledger_out)])
    assert code == 0             # quarantine degrades, never dies
    err = capsys.readouterr().err
    assert "note: run degraded" in err
    assert "quarantined" in err

    records = read_jsonl(str(ledger_out))
    retries = [r for r in records if r["type"] == "scale.retry"]
    assert retries and all(r["attempt"] >= 1 for r in retries)
    quarantines = [r for r in records if r["type"] == "scale.quarantine"]
    assert len(quarantines) == 1
    assert quarantines[0]["recovered"] is False
    assert quarantines[0]["attempts"] >= 2
    flagged = [r for r in records
               if r["type"] == "scale.shard" and r.get("quarantined")]
    assert {r["index"] for r in flagged} == \
        {r["shard"] for r in quarantines}


def test_strict_shards_cli_exit_code(capsys):
    code = main(["pa", "crc", "--max-nodes", "4", "--workers", "2",
                 "--fault", "scale.shard.poison:raise:1",
                 "--shard-retries", "0", "--strict-shards"])
    assert code == EXIT_SHARD
    err = capsys.readouterr().err
    assert "error[REPRO-SHARD]" in err
    assert "Traceback" not in err


# ----------------------------------------------------------------------
# checkpoint/resume continuity of the retry counters (on sha, the
# satellite's SIGKILL-mid-round scenario)
# ----------------------------------------------------------------------
def test_sigkill_checkpoint_resume_roundtrips_retry_counters(tmp_path):
    path = str(tmp_path / "ck.json")
    reference = compile_workload("sha")
    run_pa(reference, _config(workers=2))

    faultinject.arm("scale.worker.crash:raise:1")
    interrupted = compile_workload("sha")
    partial = run_pa(interrupted, _config(workers=2, max_rounds=1,
                                          checkpoint_path=path))
    assert partial.shards_retried >= 1
    checkpoint = load_checkpoint(path)
    assert checkpoint.shards_retried == partial.shards_retried
    assert checkpoint.shards_quarantined == 0

    faultinject.disarm_all()
    resumed = module_from_checkpoint(checkpoint)
    config = config_from_dict(checkpoint.config)
    config.max_rounds = PAConfig().max_rounds
    config.checkpoint_path = None
    result = run_pa(resumed, config, resume=checkpoint)
    assert resumed.render() == reference.render()
    assert result.shards_retried >= checkpoint.shards_retried


# ----------------------------------------------------------------------
# backoff: deterministic, capped, governor-aware
# ----------------------------------------------------------------------
def test_backoff_is_deterministic_and_capped():
    governor = RunGovernor()
    assert _backoff(1, governor) == BACKOFF_BASE
    assert _backoff(2, governor) == BACKOFF_BASE * 2
    assert _backoff(10, governor) == BACKOFF_CAP


def test_backoff_never_outlives_the_governor_budget():
    governor = RunGovernor(time_budget=0.01)
    assert _backoff(10, governor) <= 0.01
    governor.force_expire()
    assert _backoff(1, governor) == 0.0
