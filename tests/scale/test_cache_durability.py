"""Cache durability: a corrupted, truncated, version-mismatched or
misplaced persisted entry must become a typed :class:`CacheError` from
the strict loader and a counted rebuild (never a crash, never silent
stale reuse) from the tolerant :meth:`FragmentCache.get` path."""

import json
import os

import pytest

from repro.pa.driver import PAConfig, run_pa
from repro.resilience import faultinject
from repro.resilience.errors import CacheError, ReproError
from repro.scale.cache import CACHE_SCHEMA, FragmentCache
from repro.workloads import compile_workload

BODY = {"candidates": [], "lattice_nodes": 3, "tallies": {}}
KEY = "c" * 64


def _entry_path(cache):
    return cache._path(KEY)


def _write_raw(cache, text):
    with open(_entry_path(cache), "w") as handle:
        handle.write(text)


@pytest.fixture
def cache(tmp_path):
    cache = FragmentCache(str(tmp_path))
    cache.put(KEY, BODY)
    return cache


def _reopened(cache):
    # a fresh instance with an empty memory tier, forced onto disk
    return FragmentCache(cache.directory)


def test_corrupted_entry_is_typed_and_rebuilt(cache):
    _write_raw(cache, "{this is not json")
    fresh = _reopened(cache)
    with pytest.raises(CacheError):
        fresh.load_entry(KEY)
    assert fresh.get(KEY) is None          # miss, not a crash
    assert fresh.stats.invalid == 1
    assert not os.path.exists(_entry_path(cache))  # deleted for rebuild
    fresh.put(KEY, BODY)
    assert _reopened(cache).get(KEY) == BODY


def test_truncated_entry_is_typed_and_rebuilt(cache):
    with open(_entry_path(cache)) as handle:
        text = handle.read()
    _write_raw(cache, text[: len(text) // 2])
    fresh = _reopened(cache)
    with pytest.raises(CacheError):
        fresh.load_entry(KEY)
    assert fresh.get(KEY) is None
    assert fresh.stats.invalid == 1


def test_schema_mismatch_is_typed_never_stale(cache):
    doc = {"schema": "repro.scale.cache/0", "key": KEY, "result": BODY}
    _write_raw(cache, json.dumps(doc))
    fresh = _reopened(cache)
    with pytest.raises(CacheError) as excinfo:
        fresh.load_entry(KEY)
    assert "schema" in str(excinfo.value)
    # an old-format entry must degrade to cold, not be reused silently
    assert fresh.get(KEY) is None
    assert fresh.stats.invalid == 1


def test_key_mismatch_is_typed(cache):
    doc = {"schema": CACHE_SCHEMA, "key": "d" * 64, "result": BODY}
    _write_raw(cache, json.dumps(doc))
    fresh = _reopened(cache)
    with pytest.raises(CacheError):
        fresh.load_entry(KEY)
    assert fresh.get(KEY) is None


def test_incomplete_body_is_typed(cache):
    doc = {"schema": CACHE_SCHEMA, "key": KEY,
           "result": {"candidates": []}}
    _write_raw(cache, json.dumps(doc))
    fresh = _reopened(cache)
    with pytest.raises(CacheError):
        fresh.load_entry(KEY)
    assert fresh.get(KEY) is None


def test_missing_entry_is_a_plain_miss(tmp_path):
    cache = FragmentCache(str(tmp_path))
    assert cache.get(KEY) is None
    assert cache.stats.invalid == 0
    assert cache.stats.misses == 1
    with pytest.raises(CacheError):
        cache.load_entry(KEY)


def test_cache_error_is_a_typed_repro_error():
    error = CacheError("boom")
    assert isinstance(error, ReproError)
    assert error.code == "REPRO-CACHE"
    assert error.exit_code == 6


def test_unwritable_put_degrades_to_memory_only(
        tmp_path, monkeypatch, capsys):
    """ENOSPC/EACCES while persisting must not fail the mine that just
    succeeded: the entry stays in memory, the cache goes memory-only
    for the rest of the run, and exactly one warning is printed."""
    cache = FragmentCache(str(tmp_path))

    def boom(path, text):
        raise OSError(28, "No space left on device")

    monkeypatch.setattr("repro.scale.cache.atomic_write_text", boom)
    cache.put(KEY, BODY)                     # must not raise
    assert cache.get(KEY) == BODY            # memory tier still serves
    assert cache.stats.write_failed == 1
    assert cache.directory is None           # degraded for the run
    err = capsys.readouterr().err
    assert "fragment-cache persistence disabled" in err

    cache.put("d" * 64, BODY)                # later puts: memory only,
    assert cache.stats.write_failed == 1     # no repeat failure...
    assert capsys.readouterr().err == ""     # ...and no repeat warning


def test_unmakeable_directory_degrades_at_open(tmp_path, capsys):
    blocker = tmp_path / "blocker"
    blocker.write_text("")                   # makedirs hits a file
    cache = FragmentCache(str(blocker / "cache"))
    assert cache.directory is None
    assert cache.stats.write_failed == 1
    assert "fragment-cache persistence disabled" in \
        capsys.readouterr().err
    cache.put(KEY, BODY)                     # memory-only, but alive
    assert cache.get(KEY) == BODY


def test_injected_cache_corruption_never_crashes_a_run(tmp_path):
    """End to end: an armed ``scale.cache:corrupt`` fault makes every
    persisted-entry load fail, and the run still completes with the
    bit-identical result (rebuilt from mining, counted as invalid)."""
    cachedir = str(tmp_path / "cache")
    config = PAConfig(max_nodes=4, workers=1, fragment_cache=cachedir)

    reference = compile_workload("crc")
    run_pa(reference, config)

    faultinject.arm("scale.cache:corrupt:0")
    try:
        victim = compile_workload("crc")
        result = run_pa(victim, PAConfig(max_nodes=4, workers=1,
                                         fragment_cache=cachedir))
    finally:
        faultinject.disarm_all()
    assert victim.render() == reference.render()
    assert result.cache_misses > 0
