"""The scale engine's determinism gate, on all eight workloads: one
worker vs four workers, and cold cache vs warm persistent cache, must
produce byte-identical modules and identical extraction records.

This is the invariant that makes ``--workers``/``--fragment-cache``
safe to flip on anywhere: they change wall-clock, never the result.
"""

import pytest

from repro.pa.driver import PAConfig, run_pa
from repro.workloads import PROGRAMS, compile_workload


def _config(**overrides):
    # max_nodes=4 keeps the 8-workload sweep inside the tier-1 budget;
    # the sharding/caching/merge paths are depth-independent.
    return PAConfig(max_nodes=4, **overrides)


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_workers_and_cache_state_do_not_change_the_result(
    name, tmp_path
):
    cachedir = str(tmp_path / "cache")

    w1 = compile_workload(name)
    r1 = run_pa(w1, _config(workers=1, fragment_cache=cachedir))

    w4 = compile_workload(name)
    r4 = run_pa(w4, _config(workers=4))

    warm = compile_workload(name)
    rw = run_pa(warm, _config(workers=1, fragment_cache=cachedir))

    assert w1.render() == w4.render(), (
        f"{name}: 1-worker and 4-worker modules differ"
    )
    assert w1.render() == warm.render(), (
        f"{name}: cold-cache and warm-cache modules differ"
    )
    key = lambda r: [(x.round, x.method, x.size, x.occurrences,
                      x.new_symbol) for x in r.records]
    assert key(r1) == key(r4) == key(rw)
    assert r1.saved == r4.saved == rw.saved
    if r1.rounds:
        # the warm run actually exercised the persistent cache
        assert rw.cache_hits > 0
