"""Workloads: every program compiles, runs, and matches its reference."""

import pytest

from repro.workloads import PROGRAMS, compile_workload, verify_workload


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_workload_matches_reference(name):
    module = compile_workload(name)
    verify_workload(name, module)


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_workload_unscheduled_matches_reference(name):
    module = compile_workload(name, schedule=False)
    verify_workload(name, module)


def test_suite_has_the_papers_eight_programs():
    assert sorted(PROGRAMS) == [
        "bitcnts", "crc", "dijkstra", "patricia", "qsort", "rijndael",
        "search", "sha",
    ]


def test_rijndael_is_the_largest():
    """Mirrors the paper: rijndael is the biggest program in the suite."""
    sizes = {
        name: compile_workload(name).num_instructions for name in PROGRAMS
    }
    assert max(sizes, key=sizes.get) == "rijndael"


def test_workload_sources_are_nontrivial():
    for workload in PROGRAMS.values():
        module = compile_workload(workload.name)
        assert module.num_instructions > 300, workload.name
        assert len(module.functions) >= 5, workload.name
