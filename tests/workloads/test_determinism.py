"""Workload determinism and reference self-consistency."""

import pytest

from repro.binary.layout import layout
from repro.sim.machine import run_image
from repro.workloads import PROGRAMS, compile_workload


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_compilation_is_deterministic(name):
    a = compile_workload(name).render()
    b = compile_workload(name).render()
    assert a == b


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_reference_output_is_pure(name):
    workload = PROGRAMS[name]
    assert workload.expected_output() == workload.expected_output()


def test_execution_is_deterministic():
    image = layout(compile_workload("qsort"))
    first = run_image(image, max_steps=2_000_000)
    second = run_image(image, max_steps=2_000_000)
    assert first.output == second.output
    assert first.steps == second.steps


def test_expected_exit_codes():
    for workload in PROGRAMS.values():
        assert workload.expected_exit == 0


def test_outputs_are_nontrivial():
    for workload in PROGRAMS.values():
        out = workload.expected_output()
        assert out.endswith("\n")
        assert len(out) >= 8, workload.name
