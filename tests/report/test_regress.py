"""Benchmark regression comparison (benchmarks/regress.py)."""

import copy
import json
import os

import pytest

from benchmarks.harness import BASELINE_SKIP
from benchmarks.regress import (
    RESULT_METRICS,
    SCALE_METRICS,
    compare,
    main,
)

BASELINE = {
    "schema": "repro.bench/1",
    "workloads": {
        "sha": {
            "instructions": 619,
            "engines": {
                "sfx": {"saved": 38, "rounds": 10, "calls": 9,
                        "crossjumps": 1, "instructions_after": 581,
                        "seconds": 0.1, "lattice_nodes": 0},
                "edgar": {"saved": 49, "rounds": 4, "calls": 8,
                          "crossjumps": 0, "instructions_after": 570,
                          "seconds": 30.0, "lattice_nodes": 40321},
            },
        },
    },
}


class TestCompare:
    def test_identical_documents_pass(self):
        failures, warnings = compare(BASELINE, copy.deepcopy(BASELINE))
        assert failures == [] and warnings == []

    @pytest.mark.parametrize("metric", RESULT_METRICS)
    def test_result_metric_drift_fails(self, metric):
        current = copy.deepcopy(BASELINE)
        current["workloads"]["sha"]["engines"]["edgar"][metric] += 1
        failures, __ = compare(BASELINE, current)
        assert len(failures) == 1
        assert metric in failures[0]

    def test_slowdown_warns_within_default_tolerance(self):
        current = copy.deepcopy(BASELINE)
        current["workloads"]["sha"]["engines"]["edgar"]["seconds"] = 33.0
        failures, warnings = compare(BASELINE, current)
        assert failures == []
        assert len(warnings) == 1 and "+10.0%" in warnings[0]

    def test_slowdown_inside_band_is_silent(self):
        current = copy.deepcopy(BASELINE)
        current["workloads"]["sha"]["engines"]["edgar"]["seconds"] = 31.0
        assert compare(BASELINE, current) == ([], [])

    def test_speedup_is_silent(self):
        current = copy.deepcopy(BASELINE)
        current["workloads"]["sha"]["engines"]["edgar"]["seconds"] = 10.0
        assert compare(BASELINE, current) == ([], [])

    def test_fail_on_time_escalates(self):
        current = copy.deepcopy(BASELINE)
        current["workloads"]["sha"]["engines"]["edgar"]["seconds"] = 40.0
        failures, warnings = compare(BASELINE, current,
                                     fail_on_time=True)
        assert warnings == [] and len(failures) == 1

    def test_missing_engine_fails(self):
        current = copy.deepcopy(BASELINE)
        del current["workloads"]["sha"]["engines"]["sfx"]
        failures, __ = compare(BASELINE, current)
        assert failures == ["sha/sfx: engine missing from current run"]

    def test_missing_workload_fails(self):
        current = copy.deepcopy(BASELINE)
        current["workloads"] = {}
        failures, __ = compare(BASELINE, current)
        assert failures == ["sha: workload missing from current run"]

    def test_extra_cells_in_current_are_ignored(self):
        current = copy.deepcopy(BASELINE)
        current["workloads"]["crc"] = copy.deepcopy(
            BASELINE["workloads"]["sha"]
        )
        assert compare(BASELINE, current) == ([], [])

    def test_workload_size_change_fails(self):
        current = copy.deepcopy(BASELINE)
        current["workloads"]["sha"]["instructions"] = 700
        failures, __ = compare(BASELINE, current)
        assert any("workload changed" in f for f in failures)

    @pytest.mark.parametrize("metric", SCALE_METRICS)
    def test_scale_metric_drift_warns_only(self, metric):
        baseline = copy.deepcopy(BASELINE)
        baseline["schema"] = "repro.bench/2"
        cell = baseline["workloads"]["sha"]["engines"]["edgar"]
        cell.update(workers=4, shards=100, cache_hits=10,
                    lattice_nodes_reused=500)
        current = copy.deepcopy(baseline)
        current["workloads"]["sha"]["engines"]["edgar"][metric] += 1
        failures, warnings = compare(baseline, current)
        assert failures == []
        assert len(warnings) == 1 and metric in warnings[0]

    def test_v1_vs_v2_skips_absent_scale_fields(self):
        current = copy.deepcopy(BASELINE)
        current["schema"] = "repro.bench/2"
        cell = current["workloads"]["sha"]["engines"]["edgar"]
        cell.update(workers=4, shards=100, cache_hits=10,
                    lattice_nodes_reused=500)
        assert compare(BASELINE, current) == ([], [])


class TestMain:
    def _write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_exit_zero_on_match(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", BASELINE)
        cur = self._write(tmp_path, "cur.json", BASELINE)
        assert main([base, cur]) == 0
        assert "ok:" in capsys.readouterr().err

    def test_exit_one_on_drift(self, tmp_path, capsys):
        current = copy.deepcopy(BASELINE)
        current["workloads"]["sha"]["engines"]["edgar"]["saved"] = 48
        base = self._write(tmp_path, "base.json", BASELINE)
        cur = self._write(tmp_path, "cur.json", current)
        assert main([base, cur]) == 1
        assert "saved changed 49 -> 48" in capsys.readouterr().err

    def test_schema_mismatch_rejected(self, tmp_path):
        base = self._write(tmp_path, "base.json", BASELINE)
        bad = self._write(tmp_path, "bad.json", {"schema": "nope"})
        with pytest.raises(SystemExit):
            main([base, bad])


class TestCommittedBaseline:
    def test_baseline_file_is_well_formed(self):
        path = os.path.join(
            os.path.dirname(__file__), os.pardir, os.pardir,
            "BENCH_all.json",
        )
        with open(path) as handle:
            doc = json.load(handle)
        assert doc["schema"] == "repro.bench/2"
        # the committed baseline covers the full workload set — the
        # scale engine emptied BASELINE_SKIP, so every grid cell is in
        assert BASELINE_SKIP == frozenset()
        assert set(doc["workloads"]) == {
            "bitcnts", "crc", "dijkstra", "patricia", "qsort",
            "rijndael", "search", "sha",
        }
        for name, entry in doc["workloads"].items():
            assert set(entry["engines"]) == {"sfx", "edgar"}
            for engine, cell in entry["engines"].items():
                assert set(RESULT_METRICS) <= set(cell)
                assert set(SCALE_METRICS) <= set(cell)
                if engine == "edgar":
                    # the baseline is generated with --workers 4
                    assert cell["workers"] == 4
        # a baseline must self-compare clean
        assert compare(doc, doc) == ([], [])
