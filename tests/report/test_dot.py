"""Graph artifact exporters: DOT and JSON renderings."""

from repro.dfg.builder import build_dfgs
from repro.report.dot import (
    collision_to_dot,
    dfg_to_dot,
    dfg_to_json,
    fragment_to_dot,
)

from tests.conftest import SHARED_FRAGMENT_PROGRAM, module_from_source


def _f1_dfg():
    module = module_from_source(SHARED_FRAGMENT_PROGRAM)
    dfgs = build_dfgs(module, min_nodes=0)
    return next(d for d in dfgs if d.origin[0] == "f1")


class TestDfgDot:
    def test_every_instruction_becomes_a_node(self):
        dfg = _f1_dfg()
        dot = dfg_to_dot(dfg)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        for index, label in enumerate(dfg.labels):
            assert f'n{index} [label="{index}: {label}"]' in dot

    def test_mined_edges_rendered_with_kind_labels(self):
        dfg = _f1_dfg()
        dot = dfg_to_dot(dfg)
        for src, dst, kind in dfg.edges:
            assert f"n{src} -> n{dst}" in dot
        assert 'label="d"' in dot

    def test_highlight_fills_the_embedding(self):
        dfg = _f1_dfg()
        dot = dfg_to_dot(dfg, highlight=[1, 2], title="win")
        assert dot.count("fillcolor") == 2
        assert 'label="win"' in dot

    def test_full_renders_dep_edges(self):
        dfg = _f1_dfg()
        mined = dfg_to_dot(dfg)
        full = dfg_to_dot(dfg, full=True)
        assert full.count("->") >= mined.count("->")

    def test_quoting_survives_weird_labels(self):
        dot = fragment_to_dot(['say "hi"', "back\\slash"], [])
        assert '\\"hi\\"' in dot
        assert "back\\\\slash" in dot


class TestDfgJson:
    def test_structure_matches_graph(self):
        dfg = _f1_dfg()
        data = dfg_to_json(dfg)
        assert data["origin"] == ["f1", 0]
        assert [n["id"] for n in data["nodes"]] == list(
            range(len(dfg.labels))
        )
        assert len(data["edges"]) == len(dfg.edges)
        assert all(
            {"src", "dst", "kind"} <= set(e) for e in data["edges"]
        )


class TestFragmentDot:
    def test_roles_and_edges(self):
        dot = fragment_to_dot(
            ["mov r1, #3", "add r3, r1, r2"], [(0, 1, "d")],
            title="frag",
        )
        assert 'r0 [label="0: mov r1, #3"]' in dot
        assert "r0 -> r1" in dot
        assert 'label="frag"' in dot


class TestCollisionDot:
    def test_undirected_with_mis_highlighted(self):
        adjacency = [[1], [0, 2], [1]]
        dot = collision_to_dot(adjacency, chosen=[0, 2])
        assert dot.startswith("graph")
        assert "e0 -- e1" in dot and "e1 -- e2" in dot
        # each undirected edge appears once
        assert dot.count("--") == 2
        assert dot.count("fillcolor") == 2

    def test_empty_graph(self):
        dot = collision_to_dot([])
        assert dot.startswith("graph")
        assert "--" not in dot
