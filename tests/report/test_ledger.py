"""Unit behavior of the decision ledger itself."""

import pytest

from repro.report.ledger import DEFAULT_CAPS, Ledger, read_jsonl


@pytest.fixture
def live():
    ledger = Ledger()
    ledger.enable()
    return ledger


class TestLifecycle:
    def test_disabled_by_default_and_inert(self):
        ledger = Ledger()
        assert not ledger.enabled
        ledger.emit("candidate", benefit=3)
        assert ledger.records == []
        with ledger.context(round=0):
            ledger.emit("candidate", benefit=3)
        assert ledger.records == []

    def test_reset_preserves_enabled_flag(self, live):
        live.emit("candidate", benefit=1)
        live.reset()
        assert live.enabled
        assert live.records == []
        assert live.dropped == {}

    def test_emit_merges_type_and_fields(self, live):
        live.emit("candidate", benefit=3, method="call")
        assert live.records == [
            {"type": "candidate", "benefit": 3, "method": "call"}
        ]


class TestContext:
    def test_context_merged_into_nested_records(self, live):
        with live.context(round=2):
            live.emit("round.begin", instructions=10)
            with live.context(mine_pass="full"):
                live.emit("mine.pass", seeds=4)
            live.emit("round.end", instructions=8)
        live.emit("run.end", saved=2)
        assert live.records[0] == {
            "type": "round.begin", "round": 2, "instructions": 10,
        }
        assert live.records[1] == {
            "type": "mine.pass", "round": 2, "mine_pass": "full",
            "seeds": 4,
        }
        # inner context restored ...
        assert "mine_pass" not in live.records[2]
        # ... and the outer one too
        assert "round" not in live.records[3]

    def test_explicit_field_beats_context(self, live):
        with live.context(round=1):
            live.emit("candidate", round=7)
        assert live.records[0]["round"] == 7

    def test_nested_context_restores_shadowed_value(self, live):
        with live.context(round=0):
            with live.context(round=1):
                live.emit("a")
            live.emit("b")
        assert [r.get("round") for r in live.records] == [1, 0]

    def test_records_of_and_rounds(self, live):
        with live.context(round=0):
            live.emit("candidate", benefit=1)
        with live.context(round=1):
            live.emit("candidate", benefit=2)
        live.emit("run.end", saved=3)
        assert [r["benefit"] for r in live.records_of("candidate")] == [1, 2]
        assert live.rounds() == [0, 1]


class TestCaps:
    def test_capped_type_drops_and_counts(self):
        ledger = Ledger()
        ledger.caps["noisy"] = 3
        ledger.enable()
        for index in range(10):
            ledger.emit("noisy", index=index)
        assert len(ledger.records_of("noisy")) == 3
        assert ledger.dropped == {"noisy": 7}
        # surviving records are the first N, in order
        assert [r["index"] for r in ledger.records_of("noisy")] == [0, 1, 2]

    def test_uncapped_types_never_drop(self, live):
        for index in range(DEFAULT_CAPS["legality"] + 10):
            live.emit("extraction", index=index)
        assert len(live.records_of("extraction")) == (
            DEFAULT_CAPS["legality"] + 10
        )
        assert live.dropped == {}

    def test_default_caps_cover_high_frequency_types(self):
        assert {"legality", "mis", "candidate"} <= set(DEFAULT_CAPS)


class TestPersistence:
    def test_jsonl_round_trip(self, live, tmp_path):
        with live.context(round=0):
            live.emit("candidate", benefit=3, labels=["a", "b"])
        live.emit("run.end", saved=3, dropped={})
        path = tmp_path / "ledger.jsonl"
        live.write_jsonl(str(path))
        assert read_jsonl(str(path)) == live.records

    def test_non_json_values_stringified(self, live, tmp_path):
        live.emit("candidate", kinds=frozenset({"d"}))
        path = tmp_path / "ledger.jsonl"
        live.write_jsonl(str(path))  # must not raise
        assert read_jsonl(str(path))[0]["type"] == "candidate"
