"""Golden-file test: a deterministic two-round run's ledger records.

The golden program (see ``conftest.GOLDEN_PROGRAM``) is built so the
driver's two mechanisms win in a fixed order; the whole mining pipeline
is deterministic, so round numbers, candidate scores, mechanism tags
and funnel counts are pinned exactly.  If an intentional pipeline
change moves these numbers, re-measure and update them together with
the change that moved them.
"""

import pytest

from repro.binary.layout import layout
from repro.pa.driver import PAConfig, run_pa
from repro.report import ledger
from repro.report.explain import explain_round, explain_run
from repro.sim.machine import run_image

from tests.conftest import module_from_source, run_asm
from tests.report.conftest import GOLDEN_PROGRAM


@pytest.fixture(scope="module")
def golden():
    """One ledgered run of the golden program, shared by the module."""
    registry = ledger.get()
    registry.reset()
    registry.enable()
    try:
        module = module_from_source(GOLDEN_PROGRAM)
        result = run_pa(module, PAConfig(batch=False))
        records = list(registry.records)
    finally:
        registry.disable()
        registry.reset()
    return module, result, records


def _of(records, rtype):
    return [r for r in records if r["type"] == rtype]


class TestGoldenRun:
    def test_headline_numbers(self, golden):
        module, result, __ = golden
        assert result.instructions_before == 42
        assert result.instructions_after == 35
        assert result.saved == 7
        assert result.rounds == 2
        assert result.call_extractions == 1
        assert result.crossjump_extractions == 1

    def test_behaviour_preserved(self, golden):
        module, __, ___ = golden
        reference = run_asm(GOLDEN_PROGRAM)
        out = run_image(layout(module))
        assert (out.output, out.exit_code) == (
            reference.output, reference.exit_code
        )

    def test_extraction_records_match_golden_values(self, golden):
        __, ___, records = golden
        extractions = _of(records, "extraction")
        golden_rows = [
            (0, "crossjump", "tail_0", 5, 2, 4, 16),
            (1, "call", "pa_1", 6, 2, 3, 12),
        ]
        assert [
            (e["round"], e["method"], e["new_symbol"], e["size"],
             e["occurrences"], e["benefit"], e["bytes_saved"])
            for e in extractions
        ] == golden_rows
        for extraction in extractions:
            assert extraction["embedding_count"] == 2
            assert extraction["legal"] == 2
            assert extraction["mis_size"] == 2
            assert extraction["mis_mode"] == "trivial"
            assert extraction["order_kept"] == 2

    def test_extraction_records_carry_dot_artifacts(self, golden):
        __, ___, records = golden
        for extraction in _of(records, "extraction"):
            assert extraction["fragment_dot"].startswith("digraph")
            assert extraction["host_dot"].startswith("digraph")
            assert extraction["collision_dot"].startswith("graph")
            # the embedding is highlighted in its host block
            assert "fillcolor" in extraction["host_dot"]

    def test_round_records(self, golden):
        __, ___, records = golden
        begins = _of(records, "round.begin")
        ends = _of(records, "round.end")
        # two productive rounds plus the terminating empty round
        assert [r["round"] for r in begins] == [0, 1, 2]
        assert [(r["round"], r["instructions"], r["applied"], r["saved"])
                for r in ends] == [
            (0, 38, 1, 4),
            (1, 35, 1, 3),
            (2, 35, 0, 0),
        ]

    def test_run_records(self, golden):
        __, ___, records = golden
        (begin,) = _of(records, "run.begin")
        (end,) = _of(records, "run.end")
        assert begin["schema"] == ledger.LEDGER_SCHEMA
        assert begin["engine"] == "edgar"
        assert begin["instructions"] == 42
        assert begin["config"]["batch"] is False
        assert (end["rounds"], end["saved"], end["bytes_saved"]) == (
            2, 7, 28
        )
        assert end["call_extractions"] == 1
        assert end["crossjump_extractions"] == 1

    def test_mine_passes_recorded_per_round(self, golden):
        __, ___, records = golden
        passes = _of(records, "mine.pass")
        for round_number in (0, 1, 2):
            labels = [
                p["mine_pass"] for p in passes
                if p["round"] == round_number
            ]
            assert labels == ["shallow", "full", "flow"]
        assert all(p["engine"] == "edgar" for p in passes)

    def test_funnel_and_prune_records(self, golden):
        __, ___, records = golden
        skips = _of(records, "mine.skips")
        assert [s["round"] for s in skips] == [0, 1, 2]
        for skip in skips:
            total_rejected = (
                skip["floor"] + skip["illegal"] + skip["lr_infeasible"]
                + skip["order_inconsistent"] + skip["unprofitable"]
                + skip["scored"]
            )
            assert total_rejected == skip["considered"]
        # the final round mines the compacted module: nothing scores
        assert skips[-1]["scored"] == 0
        prunes = _of(records, "prune")
        assert [p["round"] for p in prunes] == [0, 1, 2]
        assert all(p["never_convex"] > 0 for p in prunes)
        # the outlined pa_1 body makes the Fig. 9 cyclic check fire
        assert prunes[-1]["cyclic"] > 0

    def test_candidate_records_include_the_winners(self, golden):
        __, ___, records = golden
        scored = [
            c for c in _of(records, "candidate")
            if c["verdict"] == "scored"
        ]
        assert any(
            c["method"] == "crossjump" and c["benefit"] == 4
            and c["round"] == 0
            for c in scored
        )
        assert any(
            c["method"] == "call" and c["benefit"] == 3
            and c["round"] == 1
            for c in scored
        )

    def test_rewrites_confirm_extractions(self, golden):
        __, ___, records = golden
        rewrites = _of(records, "rewrite")
        assert [(r["method"], r["symbol"]) for r in rewrites] == [
            ("crossjump", "tail_0"), ("call", "pa_1"),
        ]


class TestExplainGolden:
    def test_explain_round_one_narrates_the_call(self, golden):
        __, ___, records = golden
        text = explain_round(records, 1)
        assert "Round 1: 38 -> 35 instructions (saved 3)" in text
        assert "pa_1" in text and "[call]" in text
        assert "embeddings 2 -> legal 2 -> MIS size 2" in text
        assert "never-convex" in text and "cyclic-dependency" in text
        # the outlined body is printed
        assert "mul r4, r3, r1" in text

    def test_explain_round_zero_narrates_the_crossjump(self, golden):
        __, ___, records = golden
        text = explain_round(records, 0)
        assert "tail_0" in text and "[crossjump]" in text
        assert "benefit 4 instructions (16 bytes)" in text

    def test_explain_missing_round(self, golden):
        __, ___, records = golden
        text = explain_round(records, 9)
        assert "not present" in text
        assert "0, 1, 2" in text

    def test_explain_run_digest(self, golden):
        __, ___, records = golden
        digest = explain_run(records)
        assert "applied 1, saved 4 -> 38 instructions" in digest
        assert "applied 1, saved 3 -> 35 instructions" in digest
