"""The ledger-off guarantee: disabled means inert, enabled means
bit-identical results (the same contract as the telemetry registry)."""

from repro.pa.driver import PAConfig, run_pa

from tests.conftest import SHARED_FRAGMENT_PROGRAM, module_from_source


def _run(config=None):
    module = module_from_source(SHARED_FRAGMENT_PROGRAM)
    result = run_pa(module, config or PAConfig())
    return module, result


class TestDisabledGuard:
    def test_disabled_run_records_nothing(self, global_ledger):
        assert not global_ledger.enabled
        _run()
        assert global_ledger.records == []
        assert global_ledger.dropped == {}

    def test_binaries_identical_with_and_without_ledger(
        self, global_ledger
    ):
        baseline_module, baseline = _run()
        global_ledger.enable()
        ledgered_module, ledgered = _run()
        assert ledgered_module.render() == baseline_module.render()
        assert ledgered.saved == baseline.saved
        assert ledgered.rounds == baseline.rounds
        assert ledgered.records == baseline.records
        assert ledgered.lattice_nodes == baseline.lattice_nodes
        # ... and the enabled run did record the decisions
        assert any(
            r["type"] == "extraction" for r in global_ledger.records
        )

    def test_candidate_provenance_absent_when_disabled(
        self, global_ledger
    ):
        from repro.pa.driver import collect_candidates

        module = module_from_source(SHARED_FRAGMENT_PROGRAM)
        candidates = collect_candidates(module, PAConfig())
        assert candidates
        assert all(c.provenance is None for c in candidates)

    def test_candidate_provenance_attached_when_enabled(
        self, global_ledger
    ):
        from repro.pa.driver import collect_candidates

        global_ledger.enable()
        module = module_from_source(SHARED_FRAGMENT_PROGRAM)
        candidates = collect_candidates(module, PAConfig())
        assert candidates
        best = candidates[0]
        assert best.provenance is not None
        assert best.provenance["mis_size"] == best.occurrences
        assert best.provenance["collision_adjacency"] is not None
