"""The self-contained HTML run report, from synthetic ledger records."""

from repro.report.html import build_report, write_report

RECORDS = [
    {"type": "run.begin", "schema": "repro.report.ledger/1",
     "engine": "edgar", "source": "golden", "instructions": 42,
     "config": {"batch": False, "max_nodes": 8}},
    {"type": "round.begin", "round": 0, "instructions": 42},
    {"type": "mine.skips", "round": 0, "considered": 100, "floor": 10,
     "illegal": 80, "lr_infeasible": 2, "order_inconsistent": 1,
     "unprofitable": 3, "scored": 4},
    {"type": "prune", "round": 0, "never_convex": 50, "cyclic": 5},
    {"type": "extraction", "round": 0, "method": "crossjump",
     "new_symbol": "tail_0", "size": 5, "occurrences": 2, "benefit": 4,
     "bytes_saved": 16, "embedding_count": 2, "mis_size": 2,
     "instructions": ["add r0, r4, #10", "pop {r4, r5, r6, pc}"],
     "fragment_dot": "digraph f { }", "host_dot": "digraph h { }",
     "collision_dot": "graph c { }"},
    {"type": "round.end", "round": 0, "instructions": 38, "applied": 1,
     "saved": 4},
    {"type": "round.begin", "round": 1, "instructions": 38},
    {"type": "extraction", "round": 1, "method": "call",
     "new_symbol": "pa_1", "size": 6, "occurrences": 2, "benefit": 3,
     "bytes_saved": 12, "embedding_count": 2, "mis_size": 2,
     "instructions": ["mov r1, #3"]},
    {"type": "round.end", "round": 1, "instructions": 35, "applied": 1,
     "saved": 3},
    {"type": "run.end", "rounds": 2, "instructions": 35, "saved": 7,
     "bytes_saved": 28, "elapsed_seconds": 1.5,
     "dropped": {"legality": 12}},
]


class TestBuildReport:
    def test_self_contained_document(self):
        html = build_report(RECORDS)
        assert html.startswith("<!DOCTYPE html>")
        assert html.rstrip().endswith("</html>")
        # no external assets: no http(s) URLs, scripts or link tags
        assert "http://" not in html and "https://" not in html
        assert "<script" not in html and "<link" not in html
        assert "<style>" in html

    def test_run_header_and_totals(self):
        html = build_report(RECORDS, title="golden report")
        assert "golden report" in html
        assert "repro.report.ledger/1" in html
        assert ">42<" in html and ">35<" in html
        assert "total saved</td>" in html
        assert "<td>7</td>" in html
        assert "batch=False" in html

    def test_savings_chart_is_inline_svg(self):
        html = build_report(RECORDS)
        assert "<svg" in html
        # one bar per round
        assert html.count("<rect") == 2
        assert ">r0<" in html and ">r1<" in html

    def test_extraction_rows_and_dot_sources(self):
        html = build_report(RECORDS)
        assert "tail_0" in html and "pa_1" in html
        assert "badge crossjump" in html and "badge call" in html
        assert "digraph f { }" in html
        assert "graph c { }" in html
        assert "pop {r4, r5, r6, pc}" in html

    def test_candidate_funnel_table(self):
        html = build_report(RECORDS)
        assert "Candidate funnel" in html
        assert "<td>100</td>" in html and "<td>80</td>" in html

    def test_dropped_census_reported(self):
        html = build_report(RECORDS)
        assert "legality dropped 12 records" in html

    def test_telemetry_sections_optional(self):
        bare = build_report(RECORDS)
        assert "Phase tree" not in bare
        rich = build_report(
            RECORDS,
            stats={
                "counters": {"pa.runs": 1},
                "histograms": {"pa.extraction.benefit": {
                    "count": 2, "mean": 3.5, "p50": 3.0, "p90": 4.0,
                    "p99": 4.0, "max": 4.0,
                }},
            },
            tree="pa.run\n  pa.round",
        )
        assert "Phase tree" in rich
        assert "pa.runs" in rich
        assert "pa.extraction.benefit" in rich
        assert "3.500" in rich

    def test_markup_escaped(self):
        records = [dict(RECORDS[0], source="<b>evil</b>")]
        html = build_report(records)
        assert "<b>evil</b>" not in html
        assert "&lt;b&gt;evil&lt;/b&gt;" in html

    def test_empty_ledger_still_renders(self):
        html = build_report([])
        assert "no rounds recorded" in html

    def test_write_report(self, tmp_path):
        path = tmp_path / "report.html"
        write_report(str(path), RECORDS)
        assert path.read_text() == build_report(RECORDS)
