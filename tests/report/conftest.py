"""Fixtures for the decision-ledger / run-report test suite."""

from __future__ import annotations

import pytest

from repro.report import ledger

#: Two independent duplicate pairs with *different* best mechanisms:
#: f1/f2 share a reordered 6-instruction computation (call outlining,
#: benefit 3) and g1/g2 share a 5-instruction epilogue tail anchored by
#: the ``pop`` (cross-jump, benefit 4).  Under ``PAConfig(batch=False)``
#: the driver extracts exactly one candidate per round, best first, so
#: the run is a deterministic two-round golden: round 0 cross-jumps the
#: g tail, round 1 outlines the f fragment.
GOLDEN_PROGRAM = """
.text
.global _start
_start:
    bl f1
    swi #2
    bl f2
    swi #2
    bl g1
    swi #2
    bl g2
    swi #2
    mov r0, #0
    swi #0
f1:
    push {r4, r5, r6, lr}
    mov r1, #3
    mov r2, #5
    add r3, r1, r2
    mul r4, r3, r1
    sub r5, r4, #2
    eor r6, r5, r1
    mov r0, r6
    pop {r4, r5, r6, pc}
f2:
    push {r4, r5, r6, lr}
    mov r2, #5
    mov r1, #3
    add r3, r1, r2
    mul r4, r3, r1
    sub r5, r4, #2
    eor r6, r5, r1
    add r0, r6, #100
    pop {r4, r5, r6, pc}
g1:
    push {r4, r5, r6, lr}
    mov r1, #2
    mul r4, r1, r1
    add r0, r4, #10
    eor r0, r0, #3
    orr r0, r0, #1
    pop {r4, r5, r6, pc}
g2:
    push {r4, r5, r6, lr}
    mov r1, #7
    mul r4, r1, r1
    add r0, r4, #10
    eor r0, r0, #3
    orr r0, r0, #1
    pop {r4, r5, r6, pc}
"""


@pytest.fixture
def global_ledger():
    """The process-global ledger, reset and restored around the test."""
    registry = ledger.get()
    registry.reset()
    yield registry
    registry.disable()
    registry.reset()
