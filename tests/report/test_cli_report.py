"""CLI surface: ``pa --report/--ledger-out``, ``explain``, ``--force``."""

import json

import pytest

from repro.cli import main
from repro.report import ledger
from repro.report.ledger import read_jsonl

from tests.conftest import SHARED_FRAGMENT_PROGRAM


@pytest.fixture(scope="module")
def reported(tmp_path_factory):
    """One ``pa --report --ledger-out`` run, shared by the module."""
    tmp = tmp_path_factory.mktemp("report_cli")
    source = tmp / "prog.s"
    source.write_text(SHARED_FRAGMENT_PROGRAM)
    report = tmp / "report.html"
    ledger_path = tmp / "ledger.jsonl"
    code = main(["pa", str(source), "--assembly",
                 "--report", str(report),
                 "--ledger-out", str(ledger_path)])
    assert code == 0
    return source, report, ledger_path


class TestPaReport:
    def test_writes_both_artifacts(self, reported):
        __, report, ledger_path = reported
        assert report.exists() and ledger_path.exists()

    def test_ledger_stream_is_valid_jsonl(self, reported):
        __, ___, ledger_path = reported
        records = read_jsonl(str(ledger_path))
        types = [r["type"] for r in records]
        assert types[0] == "run.begin"
        assert types[-1] == "run.end"
        assert "extraction" in types

    def test_source_stamped_into_records(self, reported):
        source, __, ledger_path = reported
        records = read_jsonl(str(ledger_path))
        begin = next(r for r in records if r["type"] == "run.begin")
        assert begin["source"] == str(source)

    def test_report_totals_match_the_ledger(self, reported):
        __, report, ledger_path = reported
        records = read_jsonl(str(ledger_path))
        end = next(r for r in records if r["type"] == "run.end")
        extractions = [r for r in records if r["type"] == "extraction"]
        assert end["saved"] == sum(e["benefit"] for e in extractions)
        html = report.read_text()
        assert f"<td>{end['saved']}</td>" in html
        assert "total saved" in html

    def test_report_embeds_telemetry(self, reported):
        __, report, ___ = reported
        html = report.read_text()
        assert "Phase tree" in html
        assert "pa.run" in html

    def test_global_ledger_left_disabled_and_empty(self, reported):
        assert not ledger.get().enabled
        assert ledger.get().records == []


class TestClobberGuard:
    def test_report_refuses_to_overwrite(self, reported):
        source, report, __ = reported
        with pytest.raises(SystemExit) as exc:
            main(["pa", str(source), "--assembly",
                  "--report", str(report)])
        assert "--force" in str(exc.value)
        # guard fired before the run: the old artifact is untouched
        assert "total saved" in report.read_text()

    def test_trace_out_refuses_to_overwrite(self, reported, tmp_path):
        source, __, ___ = reported
        trace = tmp_path / "trace.json"
        trace.write_text("[]")
        with pytest.raises(SystemExit) as exc:
            main(["pa", str(source), "--assembly",
                  "--trace-out", str(trace)])
        assert "--force" in str(exc.value)
        assert trace.read_text() == "[]"

    def test_force_overwrites(self, reported, tmp_path):
        source, __, ___ = reported
        stats = tmp_path / "stats.json"
        stats.write_text("stale")
        code = main(["pa", str(source), "--assembly",
                     "--stats-out", str(stats), "--force"])
        assert code == 0
        assert json.loads(stats.read_text())["schema"].startswith(
            "repro.telemetry.stats/"
        )

    def test_missing_directory_still_rejected(self, reported):
        source, __, ___ = reported
        with pytest.raises(SystemExit):
            main(["pa", str(source), "--assembly",
                  "--report", "/nonexistent/dir/report.html"])


class TestExplainCommand:
    def test_explain_round_from_saved_ledger(self, reported, capsys):
        __, ___, ledger_path = reported
        assert main(["explain", "0", "--ledger", str(ledger_path)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("Round 0:")
        assert "winner" in out and "MIS size" in out

    def test_explain_all_digest(self, reported, capsys):
        __, ___, ledger_path = reported
        assert main(["explain", "all",
                     "--ledger", str(ledger_path)]) == 0
        assert "applied" in capsys.readouterr().out

    def test_explain_missing_round_reports_known_rounds(
        self, reported, capsys
    ):
        __, ___, ledger_path = reported
        assert main(["explain", "42",
                     "--ledger", str(ledger_path)]) == 0
        assert "not present" in capsys.readouterr().out

    def test_explain_rejects_non_integer_round(self, reported):
        __, ___, ledger_path = reported
        with pytest.raises(SystemExit):
            main(["explain", "first", "--ledger", str(ledger_path)])

    def test_explain_reruns_the_workload(self, reported, capsys):
        source, __, ___ = reported
        assert main(["explain", "0", "--source", str(source),
                     "--assembly"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("Round 0:")
        assert "candidate funnel" in out
        # the rerun cleans up after itself
        assert not ledger.get().enabled
        assert ledger.get().records == []
