"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.binary.blocks import module_from_asm
from repro.binary.layout import layout
from repro.binary.program import Module
from repro.isa.assembler import parse_program
from repro.sim.machine import run_image


def module_from_source(asm_text: str, entry: str = "_start") -> Module:
    """Assemble text into a rewritable module."""
    return module_from_asm(parse_program(asm_text), entry=entry)


def run_asm(asm_text: str, entry: str = "_start", max_steps: int = 1_000_000):
    """Assemble, link, and execute; returns the RunResult."""
    return run_image(layout(module_from_source(asm_text, entry)),
                     max_steps=max_steps)


#: A small program with three functions sharing a reordered computation;
#: used across binary/pa tests.
SHARED_FRAGMENT_PROGRAM = """
.text
.global _start
_start:
    bl f1
    swi #2
    bl f2
    swi #2
    mov r0, #0
    swi #0
f1:
    push {r4, r5, r6, lr}
    mov r1, #3
    mov r2, #5
    add r3, r1, r2
    mul r4, r3, r1
    sub r5, r4, #2
    eor r6, r5, r1
    mov r0, r6
    pop {r4, r5, r6, pc}
f2:
    push {r4, r5, r6, lr}
    mov r2, #5
    mov r1, #3
    add r3, r1, r2
    mul r4, r3, r1
    sub r5, r4, #2
    eor r6, r5, r1
    add r0, r6, #100
    pop {r4, r5, r6, pc}
"""


@pytest.fixture
def shared_fragment_module() -> Module:
    return module_from_source(SHARED_FRAGMENT_PROGRAM)


@pytest.fixture
def shared_fragment_reference():
    return run_asm(SHARED_FRAGMENT_PROGRAM)
