"""Encoder/decoder: exact encodings and property-based round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.decoder import DecodingError, decode, target_label
from repro.isa.encoder import EncodingError, encodable_imm, encode, encode_rotated_imm
from repro.isa.instructions import CONDITIONS, Instruction
from repro.isa.operands import Imm, LabelRef, Mem, Reg, RegList, ShiftedReg
from repro.isa.registers import SP


class TestImmediates:
    def test_small_values_encodable(self):
        for value in range(256):
            assert encodable_imm(value)

    def test_rotated_values(self):
        assert encodable_imm(0x80000000)
        assert encodable_imm(0x3FC00)
        assert encodable_imm(0xFF000000)

    def test_unencodable(self):
        assert not encodable_imm(0x101)
        assert not encodable_imm(0x12345678)
        assert not encodable_imm(0xFFFFFFFE)

    def test_field_decodes_back(self):
        field = encode_rotated_imm(0x3FC00)
        rot = (field >> 8) & 0xF
        imm8 = field & 0xFF
        value = ((imm8 >> (2 * rot)) | (imm8 << (32 - 2 * rot))) & 0xFFFFFFFF
        assert value == 0x3FC00


class TestExactEncodings:
    def test_mov_imm(self):
        # mov r0, #0 == 0xE3A00000
        word = encode(Instruction("mov", (Reg(0), Imm(0))))
        assert word == 0xE3A00000

    def test_add_registers(self):
        # add r0, r1, r2 == 0xE0810002
        word = encode(Instruction("add", (Reg(0), Reg(1), Reg(2))))
        assert word == 0xE0810002

    def test_bx_lr(self):
        word = encode(Instruction("bx", (Reg(14),)))
        assert word == 0xE12FFF1E

    def test_swi(self):
        word = encode(Instruction("swi", (Imm(1),)))
        assert word == 0xEF000001

    def test_branch_offset(self):
        word = encode(Instruction("b", (LabelRef("x"),)),
                      branch_offset_words=-2)
        assert word & 0xFFFFFF == 0xFFFFFE

    def test_branch_without_offset_rejected(self):
        with pytest.raises(EncodingError):
            encode(Instruction("b", (LabelRef("x"),)))

    def test_unresolved_pseudo_rejected(self):
        with pytest.raises(EncodingError):
            encode(Instruction("ldr", (Reg(0), LabelRef("x"))))

    def test_branch_offset_range_checked(self):
        with pytest.raises(EncodingError):
            encode(Instruction("b", (LabelRef("x"),)),
                   branch_offset_words=1 << 23)


class TestDecoding:
    def test_branch_target_symbolized(self):
        word = encode(Instruction("bl", (LabelRef("f"),)),
                      branch_offset_words=4)
        insn = decode(word, addr=0x8000)
        assert insn.operands[0] == LabelRef(target_label(0x8000 + 8 + 16))

    def test_data_word_often_rejected(self):
        with pytest.raises(DecodingError):
            decode(0xFFFFFFFF)

    def test_unconditional_space_rejected(self):
        with pytest.raises(DecodingError):
            decode(0xF0000000)

    def test_mul_nonzero_rn_rejected(self):
        # a mul pattern with a dirty Rn field is not a valid encoding
        word = encode(Instruction("mul", (Reg(0), Reg(1), Reg(2))))
        with pytest.raises(DecodingError):
            decode(word | (5 << 12))


# ----------------------------------------------------------------------
# property-based round trip over the full supported instruction space
# ----------------------------------------------------------------------
regs = st.integers(0, 15).map(Reg)
low_regs = st.integers(0, 14).map(Reg)
conds = st.sampled_from(CONDITIONS)
rotated_imms = st.builds(
    lambda imm8, rot: ((imm8 >> (2 * rot)) | (imm8 << (32 - 2 * rot)))
    & 0xFFFFFFFF,
    st.integers(0, 255),
    st.integers(0, 15),
).map(Imm)
shifted = st.builds(
    ShiftedReg,
    st.integers(0, 15),
    st.sampled_from(("lsl", "lsr", "asr", "ror")),
    st.integers(1, 31),
)
flex = st.one_of(regs, rotated_imms, shifted)


@st.composite
def dataproc(draw):
    mnemonic = draw(st.sampled_from(
        ("and", "eor", "sub", "rsb", "add", "adc", "sbc", "rsc",
         "orr", "bic")
    ))
    return Instruction(
        mnemonic,
        (draw(regs), draw(regs), draw(flex)),
        cond=draw(conds),
        set_flags=draw(st.booleans()),
    )


@st.composite
def moves(draw):
    return Instruction(
        draw(st.sampled_from(("mov", "mvn"))),
        (draw(regs), draw(flex)),
        cond=draw(conds),
        set_flags=draw(st.booleans()),
    )


@st.composite
def compares(draw):
    return Instruction(
        draw(st.sampled_from(("cmp", "cmn", "tst", "teq"))),
        (draw(regs), draw(flex)),
        cond=draw(conds),
    )


@st.composite
def memory(draw):
    mnemonic = draw(st.sampled_from(("ldr", "str", "ldrb", "strb")))
    if draw(st.booleans()):
        mem = Mem(
            draw(st.integers(0, 15)),
            draw(st.integers(-4095, 4095)),
            pre=draw(st.booleans()),
            writeback=draw(st.booleans()),
        )
    else:
        mem = Mem(
            draw(st.integers(0, 15)), 0,
            index=draw(st.integers(0, 15)),
            pre=draw(st.booleans()),
        )
    return Instruction(mnemonic, (draw(regs), mem), cond=draw(conds))


@st.composite
def multiplies(draw):
    if draw(st.booleans()):
        ops = (draw(regs), draw(regs), draw(regs))
        return Instruction("mul", ops, cond=draw(conds),
                           set_flags=draw(st.booleans()))
    ops = (draw(regs), draw(regs), draw(regs), draw(regs))
    return Instruction("mla", ops, cond=draw(conds),
                       set_flags=draw(st.booleans()))


@st.composite
def block_transfers(draw):
    mnemonic = draw(st.sampled_from(("push", "pop")))
    regs_list = draw(
        st.lists(st.integers(0, 15), min_size=1, max_size=8, unique=True)
    )
    return Instruction(mnemonic, (RegList(tuple(regs_list)),),
                       cond=draw(conds))


@st.composite
def others(draw):
    which = draw(st.integers(0, 1))
    if which == 0:
        return Instruction("bx", (draw(regs),), cond=draw(conds))
    return Instruction("swi", (Imm(draw(st.integers(0, (1 << 24) - 1))),),
                       cond=draw(conds))


instructions = st.one_of(
    dataproc(), moves(), compares(), memory(), multiplies(),
    block_transfers(), others(),
)


@given(instructions)
@settings(max_examples=400)
def test_encode_decode_roundtrip(insn):
    word = encode(insn)
    assert decode(word) == insn


@given(instructions)
@settings(max_examples=200)
def test_text_roundtrip(insn):
    from repro.isa.assembler import parse_instruction

    assert parse_instruction(str(insn)) == insn
