"""Register naming and parsing."""

import pytest

from repro.isa.registers import (
    FP, LR, NUM_REGS, PC, SP, is_reg_name, reg_name, reg_num,
)


def test_plain_register_names():
    assert reg_name(0) == "r0"
    assert reg_name(7) == "r7"
    assert reg_name(12) == "r12"


def test_alias_names():
    assert reg_name(SP) == "sp"
    assert reg_name(LR) == "lr"
    assert reg_name(PC) == "pc"
    assert reg_name(FP) == "fp"


def test_parse_plain():
    for i in range(NUM_REGS):
        assert reg_num(f"r{i}") == i


def test_parse_aliases():
    assert reg_num("sp") == 13
    assert reg_num("lr") == 14
    assert reg_num("pc") == 15
    assert reg_num("fp") == 11


def test_parse_case_insensitive():
    assert reg_num("R3") == 3
    assert reg_num("SP") == 13


def test_roundtrip_all_registers():
    for i in range(NUM_REGS):
        assert reg_num(reg_name(i)) == i


def test_out_of_range_rejected():
    with pytest.raises(ValueError):
        reg_name(16)
    with pytest.raises(ValueError):
        reg_num("r16")
    with pytest.raises(ValueError):
        reg_num("r-1")


def test_not_a_register():
    with pytest.raises(ValueError):
        reg_num("foo")
    assert not is_reg_name("foo")
    assert is_reg_name("r5")
    assert is_reg_name("lr")
