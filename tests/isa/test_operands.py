"""Operand value objects."""

import pytest

from repro.isa.operands import Imm, LabelRef, Mem, Reg, RegList, ShiftedReg


class TestReg:
    def test_str(self):
        assert str(Reg(0)) == "r0"
        assert str(Reg(13)) == "sp"

    def test_equality(self):
        assert Reg(3) == Reg(3)
        assert Reg(3) != Reg(4)

    def test_hashable(self):
        assert len({Reg(1), Reg(1), Reg(2)}) == 2


class TestImm:
    def test_str(self):
        assert str(Imm(42)) == "#42"
        assert str(Imm(-1)) == "#-1"


class TestShiftedReg:
    def test_str(self):
        assert str(ShiftedReg(2, "lsl", 4)) == "r2, lsl #4"

    def test_bad_shift_op(self):
        with pytest.raises(ValueError):
            ShiftedReg(2, "rot", 4)

    def test_bad_amount(self):
        with pytest.raises(ValueError):
            ShiftedReg(2, "lsl", 32)
        with pytest.raises(ValueError):
            ShiftedReg(2, "lsl", -1)


class TestMem:
    def test_plain(self):
        assert str(Mem(1)) == "[r1]"

    def test_offset(self):
        assert str(Mem(1, 8)) == "[r1, #8]"
        assert str(Mem(1, -8)) == "[r1, #-8]"

    def test_pre_writeback(self):
        assert str(Mem(1, 8, writeback=True)) == "[r1, #8]!"

    def test_post_indexed_always_writes_back(self):
        mem = Mem(1, 4, pre=False)
        assert mem.writeback
        assert str(mem) == "[r1], #4"

    def test_register_offset(self):
        assert str(Mem(1, index=2)) == "[r1, r2]"

    def test_zero_offset_writeback_prints_offset(self):
        assert str(Mem(1, 0, writeback=True)) == "[r1, #0]!"


class TestRegList:
    def test_sorted_and_deduped(self):
        assert RegList((5, 4, 5)).regs == (4, 5)

    def test_str(self):
        assert str(RegList((4, 14))) == "{r4, lr}"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RegList(())


class TestLabelRef:
    def test_str(self):
        assert str(LabelRef("loop")) == "loop"

    def test_equality(self):
        assert LabelRef("a") == LabelRef("a")
        assert LabelRef("a") != LabelRef("b")
