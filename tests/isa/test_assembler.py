"""Assembler: text parsing, directives, program round-trips."""

import pytest

from repro.isa.assembler import (
    AssemblerError,
    DataSpace,
    DataWord,
    Label,
    parse_instruction,
    parse_program,
)
from repro.isa.instructions import Instruction
from repro.isa.operands import Imm, LabelRef, Mem, Reg, RegList, ShiftedReg


class TestInstructionParsing:
    def test_mnemonic_suffix_disambiguation(self):
        # "bls" is b + ls (s is invalid on branches)
        insn = parse_instruction("bls somewhere")
        assert insn.mnemonic == "b" and insn.cond == "ls"

    def test_ldrb_not_ldr_plus_b(self):
        insn = parse_instruction("ldrb r0, [r1]")
        assert insn.mnemonic == "ldrb"

    def test_bics(self):
        insn = parse_instruction("bics r0, r1, r2")
        assert insn.mnemonic == "bic" and insn.set_flags

    def test_mullt(self):
        insn = parse_instruction("mullt r0, r1, r2")
        assert insn.mnemonic == "mul" and insn.cond == "lt"

    def test_negative_immediate(self):
        insn = parse_instruction("ldr r0, [r1, #-8]")
        assert insn.operands[1].offset == -8

    def test_hex_immediate(self):
        insn = parse_instruction("mov r0, #0xff")
        assert insn.operands[1] == Imm(255)

    def test_register_range_in_list(self):
        insn = parse_instruction("push {r4-r7, lr}")
        assert insn.operands[0] == RegList((4, 5, 6, 7, 14))

    def test_memory_post_indexed(self):
        insn = parse_instruction("ldr r0, [r1], #4")
        mem = insn.operands[1]
        assert not mem.pre and mem.writeback and mem.offset == 4

    def test_memory_pre_writeback(self):
        insn = parse_instruction("ldr r0, [r1, #4]!")
        mem = insn.operands[1]
        assert mem.pre and mem.writeback

    def test_register_offset(self):
        insn = parse_instruction("ldr r0, [r1, r2]")
        assert insn.operands[1].index == 2

    def test_scaled_offset_rejected(self):
        with pytest.raises(AssemblerError):
            parse_instruction("ldr r0, [r1, r2, lsl #2]")

    def test_shifted_register_operand(self):
        insn = parse_instruction("add r0, r1, r2, lsl #2")
        assert insn.operands[2] == ShiftedReg(2, "lsl", 2)

    def test_pseudo_load(self):
        insn = parse_instruction("ldr r0, =mytable")
        assert insn.operands[1] == LabelRef("mytable")

    def test_numeric_pseudo_load(self):
        insn = parse_instruction("ldr r0, =305419896")
        assert insn.operands[1] == LabelRef("305419896")

    def test_garbage_rejected(self):
        with pytest.raises(AssemblerError):
            parse_instruction("xyzzy r0")
        with pytest.raises(AssemblerError):
            parse_instruction("add r0")
        with pytest.raises(AssemblerError):
            parse_instruction("mov")


class TestProgramParsing:
    def test_sections_and_directives(self):
        module = parse_program(
            """
            .text
            .global _start
            _start:
                mov r0, #0
                swi #0
            .data
            table: .word 1, 2, 3
            buffer: .space 8
            """
        )
        assert module.globals == {"_start"}
        assert module.text[0] == Label("_start")
        assert isinstance(module.text[1], Instruction)
        assert module.data == [
            Label("table"), DataWord(1), DataWord(2), DataWord(3),
            Label("buffer"), DataSpace(2),
        ]

    def test_comments_stripped(self):
        module = parse_program("mov r0, #1 @ set it\nmov r1, #2 ; also\n")
        assert len(module.text) == 2

    def test_label_followed_by_instruction_same_line(self):
        module = parse_program("loop: add r0, r0, #1")
        assert module.text == [
            Label("loop"),
            parse_instruction("add r0, r0, #1"),
        ]

    def test_word_with_label_value(self):
        module = parse_program(".data\nptr: .word handler")
        assert module.data[1] == DataWord(LabelRef("handler"))

    def test_unaligned_space_rejected(self):
        with pytest.raises(AssemblerError):
            parse_program(".data\nb: .space 6")

    def test_unknown_directive_rejected(self):
        with pytest.raises(AssemblerError):
            parse_program(".bogus 3")

    def test_render_reparse_identity(self):
        source = """
        .text
        .global _start
        _start:
            push {r4, lr}
            ldr r0, =tab
            bl helper
            cmp r0, #10
            bge done
        done:
            pop {r4, pc}
        helper:
            mov pc, lr
        .data
        tab: .word 5, 6
        """
        module = parse_program(source)
        again = parse_program(module.render())
        assert again.text == module.text
        assert again.data == module.data
        assert again.globals == module.globals
