"""Instruction object model: shape checks, classification, access sets."""

import pytest

from repro.isa.instructions import Instruction, InstructionError
from repro.isa.operands import Imm, LabelRef, Mem, Reg, RegList, ShiftedReg
from repro.isa.registers import LR, PC, SP


def ins(text):
    from repro.isa.assembler import parse_instruction

    return parse_instruction(text)


class TestShapes:
    def test_unknown_mnemonic(self):
        with pytest.raises(InstructionError):
            Instruction("frob", (Reg(0),))

    def test_unknown_condition(self):
        with pytest.raises(InstructionError):
            Instruction("mov", (Reg(0), Imm(1)), cond="xx")

    def test_wrong_arity(self):
        with pytest.raises(InstructionError):
            Instruction("add", (Reg(0), Reg(1)))

    def test_compare_forces_set_flags(self):
        insn = Instruction("cmp", (Reg(0), Imm(3)))
        assert insn.set_flags

    def test_ldr_needs_memory_operand(self):
        with pytest.raises(InstructionError):
            Instruction("ldr", (Reg(0), Reg(1)))

    def test_str_pseudo_rejected(self):
        with pytest.raises(InstructionError):
            Instruction("str", (Reg(0), LabelRef("x")))

    def test_branch_needs_label(self):
        with pytest.raises(InstructionError):
            Instruction("b", (Reg(0),))


class TestClassification:
    def test_return_idioms(self):
        assert ins("bx lr").is_return
        assert ins("mov pc, lr").is_return
        assert ins("pop {r4, pc}").is_return
        assert not ins("pop {r4, lr}").is_return
        assert not ins("mov pc, r0").is_return

    def test_terminators(self):
        assert ins("b foo").is_terminator
        assert ins("bx lr").is_terminator
        assert ins("mov pc, r3").is_terminator
        assert not ins("bl foo").is_terminator
        assert not ins("add r0, r1, r2").is_terminator

    def test_call(self):
        assert ins("bl foo").is_call
        assert not ins("b foo").is_call

    def test_memory_classification(self):
        assert ins("ldr r0, [r1]").is_memory
        assert ins("push {r0}").is_memory
        assert not ins("add r0, r0, #1").is_memory
        # pseudo loads read the literal pool, not data memory
        assert not ins("ldr r0, =table").is_memory

    def test_conditional(self):
        assert ins("addeq r0, r0, #1").is_conditional
        assert not ins("add r0, r0, #1").is_conditional

    def test_label_target(self):
        assert ins("bl foo").label_target == "foo"
        assert ins("b bar").label_target == "bar"
        assert ins("bx lr").label_target is None


class TestAccessSets:
    def test_dataproc_reads_writes(self):
        insn = ins("add r0, r1, r2")
        assert insn.regs_read() == {1, 2}
        assert insn.regs_written() == {0}

    def test_shifted_operand_read(self):
        insn = ins("add r0, r1, r2, lsl #3")
        assert insn.regs_read() == {1, 2}

    def test_mov_immediate(self):
        insn = ins("mov r5, #9")
        assert insn.regs_read() == set()
        assert insn.regs_written() == {5}

    def test_compare_writes_nothing(self):
        insn = ins("cmp r1, r2")
        assert insn.regs_read() == {1, 2}
        assert insn.regs_written() == set()
        assert insn.writes_flags()

    def test_load_postindex_writeback(self):
        insn = ins("ldr r3, [r1], #4")
        assert insn.regs_read() == {1}
        assert insn.regs_written() == {3, 1}

    def test_store_reads_value_and_base(self):
        insn = ins("str r0, [r2, #8]")
        assert insn.regs_read() == {0, 2}
        assert insn.regs_written() == set()

    def test_store_writeback(self):
        insn = ins("str r0, [r2, #8]!")
        assert insn.regs_written() == {2}

    def test_push_pop(self):
        push = ins("push {r4, r5, lr}")
        assert push.regs_read() == {4, 5, LR, SP}
        assert push.regs_written() == {SP}
        pop = ins("pop {r4, r5, pc}")
        assert pop.regs_read() == {SP}
        assert pop.regs_written() == {4, 5, PC, SP}

    def test_call_convention(self):
        insn = ins("bl foo")
        assert insn.regs_read() == {0, 1, 2, 3, SP}
        assert insn.regs_written() == {0, 1, 2, 3, 12, LR}

    def test_mla_reads_three(self):
        insn = ins("mla r0, r1, r2, r3")
        assert insn.regs_read() == {1, 2, 3}
        assert insn.regs_written() == {0}

    def test_flag_readers(self):
        assert ins("addeq r0, r0, #1").reads_flags()
        assert ins("adc r0, r0, r1").reads_flags()
        assert not ins("add r0, r0, r1").reads_flags()

    def test_flag_writers(self):
        assert ins("adds r0, r0, #1").writes_flags()
        assert ins("cmp r0, #1").writes_flags()
        assert not ins("add r0, r0, #1").writes_flags()


class TestRendering:
    @pytest.mark.parametrize(
        "text",
        [
            "add r0, r1, r2",
            "adds r0, r1, #4",
            "addeqs r0, r1, r2, lsl #2",
            "ldr r3, [r1], #4",
            "strb r0, [r1, #3]",
            "push {r4, r5, lr}",
            "pop {pc}",
            "mov pc, lr",
            "bx lr",
            "cmp r0, #0",
            "swi #1",
            "ldr r0, =table",
            "b loop",
            "blne helper",
        ],
    )
    def test_text_roundtrip(self, text):
        assert str(ins(text)) == text
