"""DFS codes: ordering, canonical form, invariance properties."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mining.dfs_code import (
    code_num_nodes,
    compare_codes,
    compare_edges,
    graph_edges_of,
    is_min,
    min_dfs_code,
    node_labels_of,
    rightmost_path,
)


class TestEdgeOrder:
    def test_forward_deeper_target_first(self):
        e1 = (0, 1, 0, 0, 0, 0)
        e2 = (1, 2, 0, 0, 0, 0)
        assert compare_edges(e1, e2) < 0

    def test_forward_same_target_deeper_source_first(self):
        deep = (2, 3, 0, 0, 0, 0)
        shallow = (0, 3, 0, 0, 0, 0)
        assert compare_edges(deep, shallow) < 0

    def test_backward_before_forward_from_same_vertex(self):
        backward = (2, 0, 0, 0, 0, 0)
        forward = (2, 3, 0, 0, 0, 0)
        assert compare_edges(backward, forward) < 0

    def test_label_tiebreak(self):
        small = (0, 1, 0, 0, 0, 1)
        large = (0, 1, 0, 0, 0, 2)
        assert compare_edges(small, large) < 0
        assert compare_edges(large, small) > 0
        assert compare_edges(small, small) == 0

    def test_direction_flag_breaks_ties(self):
        out_edge = (0, 1, 5, 0, 0, 5)
        in_edge = (0, 1, 5, 1, 0, 5)
        assert compare_edges(out_edge, in_edge) < 0


class TestRightmostPath:
    def test_chain(self):
        code = [(0, 1, 0, 0, 0, 0), (1, 2, 0, 0, 0, 0)]
        assert rightmost_path(code) == [0, 1, 2]

    def test_branching(self):
        code = [(0, 1, 0, 0, 0, 0), (0, 2, 0, 0, 0, 0)]
        assert rightmost_path(code) == [0, 2]

    def test_with_backward_edge(self):
        code = [
            (0, 1, 0, 0, 0, 0),
            (1, 2, 0, 0, 0, 0),
            (2, 0, 0, 0, 0, 0),
        ]
        assert rightmost_path(code) == [0, 1, 2]


class TestCodeRecovery:
    def test_node_labels(self):
        code = [(0, 1, 7, 0, 0, 8), (1, 2, 8, 0, 0, 9)]
        assert node_labels_of(code) == [7, 8, 9]

    def test_graph_edges_respect_direction_flag(self):
        code = [(0, 1, 0, 0, 5, 1), (0, 2, 0, 1, 6, 2)]
        assert graph_edges_of(code) == [(0, 1, 5), (2, 0, 6)]

    def test_num_nodes(self):
        assert code_num_nodes([(0, 1, 0, 0, 0, 0)]) == 2
        assert code_num_nodes([]) == 0


class TestCanonicalForm:
    def test_single_edge_orientations(self):
        # one directed edge A->B seen from either end
        from_a = ((0, 1, 0, 0, 0, 1),)
        from_b = ((0, 1, 1, 1, 0, 0),)
        assert min_dfs_code(from_a) == min_dfs_code(from_b)
        assert is_min(from_a) != is_min(from_b) or from_a == from_b

    def test_chain_from_both_ends(self):
        fwd = ((0, 1, 0, 0, 0, 0), (1, 2, 0, 0, 0, 0))
        bwd = ((0, 1, 0, 1, 0, 0), (1, 2, 0, 1, 0, 0))
        assert min_dfs_code(fwd) == min_dfs_code(bwd)

    def test_min_is_idempotent(self):
        diamond = (
            (0, 1, 0, 0, 0, 0), (1, 2, 0, 0, 0, 0),
            (0, 3, 0, 0, 0, 0), (3, 2, 0, 0, 0, 0),
        )
        canonical = min_dfs_code(diamond)
        assert is_min(canonical)
        assert min_dfs_code(canonical) == canonical

    def test_paper_fig7_code_is_canonical(self):
        # sub(0)->add(1), sub(0)->ldr(2), ldr(3)->sub(0)
        # labels: sub=0 < add=1 < ldr=2 (paper's ordering)
        code = ((0, 1, 0, 0, 0, 1), (0, 2, 0, 0, 0, 2), (0, 3, 0, 1, 0, 2))
        assert is_min(code)


def _relabel_permutations(code):
    """All codes of the same graph under node renumbering, via explicit
    edge lists and re-derivation."""
    labels = node_labels_of(code)
    edges = graph_edges_of(code)
    n = len(labels)
    for perm in itertools.permutations(range(n)):
        yield (
            [labels[perm.index(i)] for i in range(n)],
            [(perm[s], perm[d], el) for (s, d, el) in edges],
        )


@st.composite
def random_codes(draw):
    """Random connected DFS-code-shaped graphs (up to 5 nodes)."""
    n = draw(st.integers(2, 5))
    labels = [draw(st.integers(0, 2)) for __ in range(n)]
    code = []
    for j in range(1, n):
        i = draw(st.integers(0, j - 1))
        direction = draw(st.integers(0, 1))
        elabel = draw(st.integers(0, 1))
        code.append((i, j, labels[i], direction, elabel, labels[j]))
    return tuple(code)


@given(random_codes())
@settings(max_examples=150, deadline=None)
def test_min_code_invariant_under_start_choice(code):
    """The canonical form must not depend on the DFS-code presentation."""
    canonical = min_dfs_code(code)
    assert is_min(canonical)
    assert min_dfs_code(canonical) == canonical
    # the canonical code denotes an isomorphic graph: same sorted labels
    # and the same number of edges
    assert sorted(node_labels_of(canonical)) == sorted(node_labels_of(code))
    assert len(canonical) == len(code)


@given(random_codes())
@settings(max_examples=60, deadline=None)
def test_compare_codes_total_order(code):
    canonical = min_dfs_code(code)
    assert compare_codes(canonical, tuple(code)) <= 0
    assert compare_codes(canonical, canonical) == 0


@given(random_codes())
@settings(max_examples=200, deadline=None)
def test_is_min_agrees_with_min_dfs_code(code):
    """The fast early-abort is_min must agree with the reference
    construction on every valid code."""
    assert is_min(tuple(code)) == (min_dfs_code(code) == tuple(code))
