"""Miner resource limits: deadlines, truncation, streaming hooks."""

import time

from repro.dfg.graph import DFG
from repro.mining.edgar import Edgar
from repro.mining.gspan import DgSpan


def chain(labels):
    edges = {(i, i + 1, "d") for i in range(len(labels) - 1)}
    return DFG(labels=[str(l) for l in labels], insns=[None] * len(labels),
               edges=edges, dep_edges=set(edges))


def dense(n):
    """A graph with many identical labels: combinatorial embeddings."""
    labels = ["X"] * n
    edges = {(i, j, "d") for i in range(n) for j in range(i + 1, n)}
    return DFG(labels=labels, insns=[None] * n, edges=edges,
               dep_edges=set(edges))


def test_deadline_unwinds_cleanly():
    db = [dense(12) for __ in range(4)]
    miner = Edgar(min_support=2, max_nodes=8)
    miner.deadline = time.monotonic()  # already expired
    fragments = miner.mine(db)
    assert miner.deadline_hit
    assert fragments == [] or all(f.support >= 2 for f in fragments)


def test_no_deadline_by_default():
    miner = Edgar(min_support=2)
    fragments = miner.mine([chain("ABC"), chain("ABC")])
    assert not miner.deadline_hit
    assert fragments


def test_partial_results_are_valid():
    db = [dense(10) for __ in range(2)]
    miner = Edgar(min_support=2, max_nodes=6)
    seen = []
    started = time.monotonic()
    miner.deadline = started + 0.3
    miner.on_fragment = seen.append
    miner.mine(db)
    for fragment in seen:
        assert fragment.num_nodes >= 2
        assert len(fragment.embeddings) >= 1


def test_truncation_counter():
    db = [dense(11) for __ in range(2)]
    miner = Edgar(min_support=2, max_nodes=4, max_embeddings=5)
    miner.mine(db)
    assert miner.truncated_branches > 0


def test_streaming_sink_replaces_list():
    db = [chain("ABC"), chain("ABC")]
    miner = DgSpan(min_support=2)
    collected = []
    miner.on_fragment = collected.append
    returned = miner.mine(db)
    assert returned == []
    assert collected


def test_prune_subtree_hook_can_stop_everything():
    db = [chain("ABCDE"), chain("ABCDE")]
    miner = DgSpan(min_support=2)
    miner.prune_subtree = lambda cap, n: True
    assert miner.mine(db) == []

    miner.prune_subtree = lambda cap, n: False
    assert miner.mine(db)


def test_visited_nodes_counted():
    db = [chain("ABC"), chain("ABC")]
    miner = DgSpan(min_support=2)
    miner.mine(db)
    assert miner.visited_nodes > 0
