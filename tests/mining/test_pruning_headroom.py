"""The convexity-headroom prune (never_convex_within)."""

from repro.binary.program import BasicBlock
from repro.dfg.builder import build_dfg
from repro.dfg.graph import DFG
from repro.isa.assembler import parse_instruction
from repro.mining.pruning import between_nodes, is_convex, never_convex_within


def mk(labels, edges):
    return DFG(labels=[str(l) for l in labels], insns=[None] * len(labels),
               edges=set(edges), dep_edges=set(edges))


def chain(n):
    return mk(["X"] * n, {(i, i + 1, "d") for i in range(n - 1)})


def test_convex_embedding_never_pruned():
    g = chain(10)
    assert not never_convex_within(g, [3, 4, 5], max_nodes=4)


def test_local_gap_within_headroom_not_pruned():
    g = chain(10)
    # fragment {2, 4}: node 3 between, headroom 6: absorbable
    assert not never_convex_within(g, [2, 4], max_nodes=8)
    assert between_nodes(g, [2, 4]) == {3}


def test_wide_gap_beyond_headroom_pruned():
    g = chain(30)
    # fragment {0, 29}: 28 between nodes, headroom 6: hopeless
    assert never_convex_within(g, [0, 29], max_nodes=8)


def test_exactly_at_headroom_boundary():
    g = chain(10)
    # fragment {0, 5}: 4 between nodes
    assert not never_convex_within(g, [0, 5], max_nodes=6)   # 2 + 4 = 6
    assert never_convex_within(g, [0, 5], max_nodes=5)


def test_oversized_fragment_pruned():
    g = chain(10)
    assert never_convex_within(g, list(range(9)), max_nodes=5)


def test_disconnected_between_paths_counted():
    # two parallel paths bridging the fragment
    g = mk("ABCDE", {(0, 1, "d"), (1, 4, "d"), (0, 2, "d"), (2, 4, "d"),
                     (0, 3, "d"), (3, 4, "d")})
    assert between_nodes(g, [0, 4]) == {1, 2, 3}
    assert never_convex_within(g, [0, 4], max_nodes=4)
    assert not never_convex_within(g, [0, 4], max_nodes=5)


def test_superset_monotonicity_property():
    """between(F') ⊇ between(F) \\ F' — the lemma the prune rests on."""
    insns = [parse_instruction(t) for t in (
        "mov r0, #1", "add r1, r0, #1", "add r2, r1, #1",
        "add r3, r2, #1", "add r4, r3, r0",
    )]
    dfg = build_dfg(BasicBlock(instructions=insns))
    small = {0, 4}
    for extra in range(1, 4):
        larger = small | {extra}
        assert between_nodes(dfg, small) - larger <= between_nodes(
            dfg, larger
        )
