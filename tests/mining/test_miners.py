"""DgSpan and Edgar: frequency semantics, completeness, pruning."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dfg.graph import DFG
from repro.mining.edgar import Edgar, non_overlapping_embeddings
from repro.mining.gspan import DgSpan, MiningDB
from repro.mining.pruning import (
    between_nodes,
    is_convex,
    is_permanently_illegal,
)


def mk(labels, edges, dep_edges=None):
    return DFG(
        labels=[str(l) for l in labels],
        insns=[None] * len(labels),
        edges=set(edges),
        dep_edges=set(dep_edges) if dep_edges is not None else set(edges),
    )


class TestFrequencySemantics:
    def test_dgspan_counts_graphs_not_embeddings(self):
        twice_in_one = mk("ABAB", [(0, 1, "d"), (2, 3, "d")])
        assert DgSpan(min_support=2).mine([twice_in_one]) == []
        frags = Edgar(min_support=2).mine([twice_in_one])
        assert len(frags) == 1
        assert [f.node_labels for f in frags] == [["A", "B"]]

    def test_both_count_across_graphs(self):
        g = mk("AB", [(0, 1, "d")])
        for miner in (DgSpan(min_support=2), Edgar(min_support=2)):
            frags = miner.mine([g, g])
            assert len(frags) == 1

    def test_overlapping_embeddings_not_counted(self):
        # A->B<-A: two embeddings of A->B share node B
        g = mk("AAB", [(0, 2, "d"), (1, 2, "d")])
        assert Edgar(min_support=2).mine([g]) == []

    def test_min_nodes_filter(self):
        g = mk("ABC", [(0, 1, "d"), (1, 2, "d")])
        frags = Edgar(min_support=2, min_nodes=3).mine([g, g])
        assert all(f.num_nodes >= 3 for f in frags)
        assert any(f.num_nodes == 3 for f in frags)

    def test_max_nodes_cap(self):
        g = mk("ABCDE", [(i, i + 1, "d") for i in range(4)])
        frags = Edgar(min_support=2, max_nodes=3).mine([g, g])
        assert all(f.num_nodes <= 3 for f in frags)

    def test_support_values(self):
        g = mk("AB", [(0, 1, "d")])
        frags = DgSpan(min_support=2).mine([g, g, g])
        assert frags[0].support == 3
        frags = Edgar(min_support=2).mine([g, g, g])
        assert frags[0].support == 3


class TestEdgeDirectionMatters:
    def test_direction_distinguishes(self):
        fwd = mk("AB", [(0, 1, "d")])
        # same labels, arrow reversed (B->A i.e. node1->node0 invalid:
        # build with order swapped instead)
        bwd = mk("BA", [(0, 1, "d")])
        frags = Edgar(min_support=2).mine([fwd, bwd])
        assert frags == []

    def test_edge_kind_distinguishes(self):
        g1 = mk("AB", [(0, 1, "d")])
        g2 = mk("AB", [(0, 1, "m")])
        assert Edgar(min_support=2).mine([g1, g2]) == []


class TestCompletenessSmall:
    def _brute_force_connected_counts(self, dfgs, size):
        """Count label-multisets of connected `size`-node subgraphs that
        appear in >= 2 graphs (weak check of completeness)."""
        found = set()
        per_graph = []
        for g in dfgs:
            local = set()
            n = g.num_nodes
            for nodes in itertools.combinations(range(n), size):
                edges = [
                    (s, d) for (s, d, __) in g.edges
                    if s in nodes and d in nodes
                ]
                # connectivity
                seen = {nodes[0]}
                frontier = [nodes[0]]
                while frontier:
                    v = frontier.pop()
                    for s, d in edges:
                        for a, b in ((s, d), (d, s)):
                            if a == v and b not in seen:
                                seen.add(b)
                                frontier.append(b)
                if len(seen) == len(nodes):
                    local.add(tuple(sorted(g.labels[v] for v in nodes)))
            per_graph.append(local)
        for key in set.union(*per_graph):
            if sum(key in local for local in per_graph) >= 2:
                found.add(key)
        return found

    def test_finds_all_two_node_fragments(self):
        g1 = mk("ABC", [(0, 1, "d"), (1, 2, "d")])
        g2 = mk("BCA", [(0, 1, "d"), (1, 2, "d")])
        frags = DgSpan(min_support=2, min_nodes=2, max_nodes=2).mine([g1, g2])
        mined = {tuple(sorted(f.node_labels)) for f in frags}
        expected = self._brute_force_connected_counts([g1, g2], 2)
        assert mined == expected

    def test_finds_all_three_node_fragments(self):
        g1 = mk("ABCD", [(0, 1, "d"), (1, 2, "d"), (1, 3, "m")])
        # same shape, nodes renumbered (edges must stay forward)
        g2 = mk("ABDC", [(0, 1, "d"), (1, 3, "d"), (1, 2, "m")])
        frags = DgSpan(min_support=2, min_nodes=3, max_nodes=3).mine([g1, g2])
        mined = {tuple(sorted(f.node_labels)) for f in frags}
        expected = self._brute_force_connected_counts([g1, g2], 3)
        assert mined == expected


class TestPruning:
    def test_between_nodes(self):
        # 0 -> 1 -> 2 with fragment {0, 2}: node 1 is in between
        g = mk("ABC", [(0, 1, "d"), (1, 2, "d")])
        assert between_nodes(g, [0, 2]) == {1}
        assert not is_convex(g, [0, 2])
        assert is_convex(g, [0, 1])
        assert is_convex(g, [0, 1, 2])

    def test_permanent_illegality_requires_unminable_culprit(self):
        # culprit node 1 participates in mined edges: curable
        g = mk("ABC", [(0, 1, "d"), (1, 2, "d")])
        assert not is_permanently_illegal(g, [0, 2])
        # culprit connected only through dep edges: permanent
        g2 = DFG(
            labels=["A", "B", "C"],
            insns=[None] * 3,
            edges={(0, 2, "d")},
            dep_edges={(0, 1, "a"), (1, 2, "a"), (0, 2, "d")},
        )
        assert is_permanently_illegal(g2, [0, 2])

    def test_pa_pruning_drops_illegal_branch(self):
        g2 = DFG(
            labels=["A", "B", "C"],
            insns=[None] * 3,
            edges={(0, 2, "d")},
            dep_edges={(0, 1, "a"), (1, 2, "a"), (0, 2, "d")},
        )
        frags = Edgar(min_support=2, pa_pruning=True).mine([g2, g2])
        # A->C is permanently illegal inside each graph, but the two
        # occurrences live in *different* graphs, so both copies remain
        # extractable... they are dropped only when illegal:
        assert len(frags) == 0 or all(f.embeddings for f in frags)


class TestNonOverlapSelection:
    def test_selection_maximum(self):
        # three chained overlapping embeddings: best disjoint pair
        from repro.mining.embeddings import Embedding

        embs = [
            Embedding(0, (0, 1)), Embedding(0, (1, 2)), Embedding(0, (2, 3)),
        ]
        chosen = non_overlapping_embeddings(embs)
        assert len(chosen) == 2

    def test_cross_graph_all_kept(self):
        from repro.mining.embeddings import Embedding

        embs = [Embedding(i, (0, 1)) for i in range(4)]
        assert len(non_overlapping_embeddings(embs)) == 4
