"""Collision graphs and maximum independent set."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mining.collision import build_collision_graph, connected_components
from repro.mining.embeddings import Embedding, dedupe_by_node_set
from repro.mining.mis import greedy_mis, max_independent_set


def emb(graph, *nodes):
    return Embedding(graph, tuple(nodes))


class TestEmbeddings:
    def test_overlap_same_graph(self):
        assert emb(0, 1, 2).overlaps(emb(0, 2, 3))
        assert not emb(0, 1, 2).overlaps(emb(0, 3, 4))

    def test_no_overlap_across_graphs(self):
        assert not emb(0, 1, 2).overlaps(emb(1, 1, 2))

    def test_dedupe_by_node_set(self):
        embeddings = [emb(0, 1, 2), emb(0, 2, 1), emb(0, 3, 4)]
        unique = dedupe_by_node_set(embeddings)
        assert len(unique) == 2
        assert unique[0] == emb(0, 1, 2)


class TestCollisionGraph:
    def test_adjacency(self):
        embeddings = [emb(0, 1, 2), emb(0, 2, 3), emb(0, 4, 5)]
        adj = build_collision_graph(embeddings)
        assert adj[0] == [1] and adj[1] == [0] and adj[2] == []

    def test_cross_graph_never_collides(self):
        embeddings = [emb(0, 1, 2), emb(1, 1, 2)]
        adj = build_collision_graph(embeddings)
        assert adj == [[], []]

    def test_components(self):
        adj = [[1], [0], [3], [2], []]
        comps = connected_components(adj)
        assert sorted(map(tuple, comps)) == [(0, 1), (2, 3), (4,)]


def brute_force_mis(adj):
    n = len(adj)
    best = 0
    for r in range(n, 0, -1):
        for subset in itertools.combinations(range(n), r):
            chosen = set(subset)
            if all(u not in adj[v] for v in chosen for u in chosen):
                return r
    return best


class TestMIS:
    def test_empty(self):
        assert max_independent_set([]) == []

    def test_no_edges_takes_all(self):
        assert max_independent_set([[], [], []]) == [0, 1, 2]

    def test_path_graph(self):
        # 0-1-2-3-4: MIS = {0,2,4}
        adj = [[1], [0, 2], [1, 3], [2, 4], [3]]
        assert len(max_independent_set(adj)) == 3

    def test_clique(self):
        adj = [[1, 2], [0, 2], [0, 1]]
        assert len(max_independent_set(adj)) == 1

    def test_star(self):
        adj = [[1, 2, 3, 4], [0], [0], [0], [0]]
        assert len(max_independent_set(adj)) == 4

    def test_result_is_independent(self):
        adj = [[1], [0, 2], [1, 3], [2, 4], [3]]
        chosen = max_independent_set(adj)
        for v in chosen:
            assert not set(adj[v]) & set(chosen)

    def test_greedy_is_independent(self):
        adj = [[1, 2], [0], [0, 3], [2]]
        chosen = greedy_mis(adj)
        for v in chosen:
            assert not set(adj[v]) & set(chosen)


@st.composite
def random_graphs(draw):
    n = draw(st.integers(1, 9))
    edges = set()
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                edges.add((i, j))
    adj = [[] for __ in range(n)]
    for i, j in edges:
        adj[i].append(j)
        adj[j].append(i)
    return adj


@given(random_graphs())
@settings(max_examples=120, deadline=None)
def test_exact_mis_matches_brute_force(adj):
    exact = max_independent_set(adj)
    # independence
    for v in exact:
        assert not set(adj[v]) & set(exact)
    # maximality (cardinality)
    assert len(exact) == brute_force_mis(adj)


@given(random_graphs())
@settings(max_examples=80, deadline=None)
def test_greedy_never_beats_exact(adj):
    assert len(greedy_mis(adj)) <= len(max_independent_set(adj))
