"""DFG construction: dependence kinds, program-order invariant."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.binary.program import BasicBlock
from repro.dfg.builder import build_dfg
from repro.dfg.graph import FLOW_KINDS
from repro.isa.assembler import parse_instruction


def block(*texts):
    return BasicBlock(instructions=[parse_instruction(t) for t in texts])


def kinds_between(dfg, src, dst):
    return {k for (s, d, k) in dfg.dep_edges if (s, d) == (src, dst)}


class TestRegisterDependencies:
    def test_raw(self):
        dfg = build_dfg(block("mov r0, #1", "add r1, r0, #2"))
        assert ("d" in kinds_between(dfg, 0, 1))

    def test_war(self):
        dfg = build_dfg(block("add r1, r0, #2", "mov r0, #1"))
        assert kinds_between(dfg, 0, 1) == {"a"}

    def test_waw(self):
        dfg = build_dfg(block("mov r0, #1", "mov r0, #2"))
        assert kinds_between(dfg, 0, 1) == {"o"}

    def test_waw_skipped_with_intervening_reader(self):
        dfg = build_dfg(
            block("mov r0, #1", "add r1, r0, #0", "mov r0, #2")
        )
        # transitivity: 0 -d-> 1 -a-> 2; no direct o edge needed
        assert kinds_between(dfg, 0, 2) == set()
        assert "d" in kinds_between(dfg, 0, 1)
        assert "a" in kinds_between(dfg, 1, 2)

    def test_raw_killed_by_intermediate_write(self):
        dfg = build_dfg(block("mov r0, #1", "mov r0, #2", "add r1, r0, #0"))
        assert kinds_between(dfg, 0, 2) == set()
        assert "d" in kinds_between(dfg, 1, 2)

    def test_writeback_chains_loads(self):
        dfg = build_dfg(block("ldr r3, [r1], #4", "ldr r2, [r1], #4"))
        assert "d" in kinds_between(dfg, 0, 1)


class TestFlagDependencies:
    def test_cmp_to_conditional(self):
        dfg = build_dfg(block("cmp r0, #0", "moveq r1, #1"))
        assert "f" in kinds_between(dfg, 0, 1)

    def test_flag_anti_dependence(self):
        dfg = build_dfg(block("cmp r0, #0", "beq out", "cmp r1, #0"))
        assert "a" in kinds_between(dfg, 1, 2)

    def test_carry_reader(self):
        dfg = build_dfg(block("adds r0, r0, r1", "adc r2, r2, r3"))
        assert "f" in kinds_between(dfg, 0, 1)


class TestMemoryDependencies:
    def test_store_load(self):
        dfg = build_dfg(block("str r0, [r1]", "ldr r2, [r3]"))
        assert "m" in kinds_between(dfg, 0, 1)

    def test_load_load_unordered(self):
        dfg = build_dfg(block("ldr r0, [r1]", "ldr r2, [r3]"))
        assert kinds_between(dfg, 0, 1) == set()

    def test_load_store_anti(self):
        dfg = build_dfg(block("ldr r0, [r1]", "str r2, [r3]"))
        assert "a" in kinds_between(dfg, 0, 1)

    def test_call_is_memory_barrier(self):
        dfg = build_dfg(block("str r0, [r1]", "bl foo", "ldr r2, [r3]"))
        assert "m" in kinds_between(dfg, 0, 1)
        assert "m" in kinds_between(dfg, 1, 2)

    def test_pseudo_load_not_memory(self):
        dfg = build_dfg(block("str r0, [r1]", "ldr r2, =table"))
        assert kinds_between(dfg, 0, 1) == set()


class TestInvariants:
    def test_mined_subset_of_dep(self):
        dfg = build_dfg(
            block("mov r0, #1", "adds r1, r0, #2", "moveq r2, #3",
                  "str r2, [r1]"),
            mined_kinds=FLOW_KINDS,
        )
        assert dfg.edges <= dfg.dep_edges
        assert all(k in FLOW_KINDS for (__, ___, k) in dfg.edges)

    def test_edges_respect_program_order(self):
        dfg = build_dfg(
            block("ldr r0, [r1], #4", "mul r2, r0, r0", "str r2, [r1]")
        )
        assert all(s < d for (s, d, __) in dfg.dep_edges)

    def test_labels_are_instruction_texts(self):
        texts = ("mov r0, #1", "add r1, r0, #2")
        dfg = build_dfg(block(*texts))
        assert dfg.labels == list(texts)


# property: dependence edges always acyclic + forward on random blocks
_random_insns = st.lists(
    st.sampled_from(
        [
            "mov r0, #1", "mov r1, #2", "add r0, r0, r1",
            "adds r2, r0, #3", "moveq r3, #4", "cmp r0, r1",
            "ldr r4, [r0]", "str r4, [r1]", "ldr r5, [r2], #4",
            "mul r6, r0, r1", "push {r4}", "pop {r4}", "bl foo",
            "eor r7, r0, r1", "mvn r8, r0",
        ]
    ),
    min_size=1,
    max_size=12,
)


@given(_random_insns)
@settings(max_examples=150)
def test_random_blocks_forward_edges(texts):
    dfg = build_dfg(block(*texts))
    assert all(0 <= s < d < dfg.num_nodes for (s, d, __) in dfg.dep_edges)
    assert dfg.edges <= dfg.dep_edges
