"""DFG container, degree statistics (Tables 2/3), linearization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.binary.program import BasicBlock
from repro.dfg.builder import build_dfg
from repro.dfg.graph import DFG
from repro.dfg.linearize import (
    LinearizeError,
    block_constraint_edges,
    is_valid_order,
    topological_order,
)
from repro.dfg.stats import degree_histogram, fanout_summary
from repro.isa.assembler import parse_instruction


def block(*texts):
    return BasicBlock(instructions=[parse_instruction(t) for t in texts])


def mk_dfg(labels, edges):
    return DFG(
        labels=[str(l) for l in labels],
        insns=[None] * len(labels),
        edges=set(edges),
        dep_edges=set(edges),
    )


class TestDFGContainer:
    def test_rejects_backward_edges(self):
        with pytest.raises(ValueError):
            mk_dfg(["a", "b"], [(1, 0, "d")])

    def test_rejects_mined_not_in_dep(self):
        with pytest.raises(ValueError):
            DFG(labels=["a", "b"], insns=[None, None],
                edges={(0, 1, "d")}, dep_edges=set())

    def test_adjacency(self):
        dfg = mk_dfg("abc", [(0, 1, "d"), (0, 2, "m")])
        assert dfg.successors(0) == [(1, "d"), (2, "m")]
        assert dfg.predecessors(2) == [(0, "m")]
        assert dfg.predecessors(0) == []

    def test_induced_edges(self):
        dfg = mk_dfg("abcd", [(0, 1, "d"), (1, 2, "d"), (2, 3, "d")])
        assert dfg.induced_dep_edges([0, 1, 3]) == {(0, 1, "d")}

    def test_degrees(self):
        dfg = mk_dfg("abc", [(0, 1, "d"), (0, 2, "d")])
        assert dfg.out_degree(0) == 2
        assert dfg.in_degree(1) == 1

    def test_networkx_export(self):
        dfg = mk_dfg("ab", [(0, 1, "d")])
        graph = dfg.to_networkx()
        assert graph.number_of_nodes() == 2
        assert graph.number_of_edges() == 1


class TestStats:
    def test_chain_has_no_high_degree(self):
        dfg = mk_dfg("abc", [(0, 1, "d"), (1, 2, "d")])
        summary = fanout_summary([dfg])
        assert summary.high_degree == 0
        assert summary.low_degree == 3

    def test_fan_out_counts(self):
        dfg = mk_dfg("abc", [(0, 1, "d"), (0, 2, "d")])
        summary = fanout_summary([dfg])
        assert summary.high_degree == 1  # node 0

    def test_histogram_buckets(self):
        dfg = mk_dfg(
            "abcdef",
            [(0, 5, "d"), (1, 5, "d"), (2, 5, "d"), (3, 5, "d"),
             (4, 5, "d")],
        )
        hist = degree_histogram([dfg])
        assert hist.in_counts == (5, 0, 0, 0, 1)   # node 5 has indeg 5
        assert hist.out_counts == (1, 5, 0, 0, 0)
        assert hist.total_nodes == 6

    def test_histogram_across_graphs(self):
        dfgs = [mk_dfg("ab", [(0, 1, "d")]) for __ in range(3)]
        hist = degree_histogram(dfgs)
        assert hist.total_nodes == 6


class TestLinearize:
    def test_terminator_pinned_last(self):
        dfg = build_dfg(block("mov r0, #1", "mov r1, #2", "b out"))
        edges = block_constraint_edges(dfg)
        assert (0, 2) in edges and (1, 2) in edges

    def test_call_not_pinned(self):
        dfg = build_dfg(block("mov r4, #1", "bl foo", "mov r5, #2"))
        edges = block_constraint_edges(dfg)
        assert (2, 1) not in edges and (1, 2) not in edges

    def test_priority_respected(self):
        order = topological_order(3, set(), priority=[2, 0, 1])
        assert order == [1, 2, 0]

    def test_cycle_detected(self):
        with pytest.raises(LinearizeError):
            topological_order(2, {(0, 1), (1, 0)}, priority=[0, 1])

    def test_is_valid_order(self):
        dfg = build_dfg(block("mov r0, #1", "add r1, r0, #1", "b out"))
        assert is_valid_order(dfg, [0, 1, 2])
        assert not is_valid_order(dfg, [1, 0, 2])
        assert not is_valid_order(dfg, [0, 2, 1])
        assert not is_valid_order(dfg, [0, 1])


_random_insns = st.lists(
    st.sampled_from(
        [
            "mov r0, #1", "add r0, r0, #1", "mov r1, r0", "cmp r1, #3",
            "ldr r2, [r0]", "str r2, [r1]", "mul r3, r1, r2",
            "movlt r4, #9", "eor r0, r0, r1",
        ]
    ),
    min_size=2,
    max_size=10,
)


@given(_random_insns)
@settings(max_examples=100)
def test_any_priority_yields_valid_order(texts):
    """Every topological order of the constraints is a valid reordering."""
    dfg = build_dfg(block(*texts))
    edges = block_constraint_edges(dfg)
    n = dfg.num_nodes
    # reversed priority: stress orders far from the original
    order = topological_order(n, edges, priority=[n - i for i in range(n)])
    assert is_valid_order(dfg, order)
