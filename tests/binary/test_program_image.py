"""Module/BasicBlock model and the Image container."""

import pytest

from repro.binary.image import DATA_BASE, TEXT_BASE, Image
from repro.binary.program import BasicBlock, Function, Module
from repro.isa.assembler import parse_instruction, parse_program

from tests.conftest import module_from_source


class TestBasicBlock:
    def test_terminator_detection(self):
        block = BasicBlock(instructions=[parse_instruction("b away")])
        assert block.terminator is not None
        assert not block.falls_through

    def test_conditional_branch_falls_through(self):
        block = BasicBlock(instructions=[parse_instruction("beq away")])
        assert block.terminator is None
        assert block.falls_through

    def test_empty_block_falls_through(self):
        assert BasicBlock().falls_through

    def test_len_and_iter(self):
        block = BasicBlock(instructions=[
            parse_instruction("mov r0, #1"),
            parse_instruction("mov r1, #2"),
        ])
        assert len(block) == 2
        assert [str(i) for i in block] == ["mov r0, #1", "mov r1, #2"]


class TestModule:
    def test_fresh_label_avoids_collisions(self):
        module = module_from_source(
            "_start:\n bl pa_0\n swi #0\npa_0:\n mov pc, lr\n"
        )
        name = module.fresh_label("pa")
        assert name != "pa_0"
        assert name not in module.defined_labels()

    def test_function_lookup(self):
        module = module_from_source("_start:\n bl f\n swi #0\nf:\n mov pc, lr\n")
        assert module.function("f").name == "f"
        with pytest.raises(KeyError):
            module.function("ghost")

    def test_to_asm_roundtrip_preserves_labels(self):
        module = module_from_source(
            """
            _start:
                cmp r0, #0
                beq skip
                mov r1, #1
            skip:
                swi #0
            """
        )
        text = module.render()
        assert "skip:" in text
        again = parse_program(text)
        assert "_start" in again.globals

    def test_num_instructions_sums_functions(self):
        module = module_from_source(
            "_start:\n bl f\n swi #0\nf:\n mov r0, #0\n mov pc, lr\n"
        )
        assert module.num_instructions == 4


class TestImage:
    def test_word_access(self):
        image = Image(text=[1, 2, 3], data=[9])
        assert image.word_at(TEXT_BASE + 4) == 2
        assert image.word_at(DATA_BASE) == 9

    def test_bounds(self):
        image = Image(text=[1], data=[])
        with pytest.raises(ValueError):
            image.word_at(TEXT_BASE + 4)
        with pytest.raises(ValueError):
            image.word_at(TEXT_BASE + 1)  # unaligned

    def test_section_predicates(self):
        image = Image(text=[1, 2], data=[3])
        assert image.in_text(TEXT_BASE)
        assert not image.in_text(TEXT_BASE + 8)
        assert image.in_data(DATA_BASE)
        assert not image.in_data(DATA_BASE + 4)

    def test_word_range_validated(self):
        with pytest.raises(ValueError):
            Image(text=[1 << 33], data=[])

    def test_text_must_fit_below_data(self):
        huge = [0] * (((DATA_BASE - TEXT_BASE) // 4) + 1)
        with pytest.raises(ValueError):
            Image(text=huge, data=[])

    def test_symbol_lookup(self):
        image = Image(text=[0], data=[], symbols={"f": TEXT_BASE})
        assert image.symbol_at(TEXT_BASE) == "f"
        assert image.symbol_at(TEXT_BASE + 4) is None
