"""The loader's typed rejection of malformed images."""

import pytest

from repro.binary.image import Image
from repro.binary.loader import LoaderError, load_image
from repro.isa.decoder import DecodingError
from repro.isa.encoder import encode
from repro.isa.instructions import Instruction
from repro.isa.operands import Imm, LabelRef, Mem, Reg
from repro.isa.registers import PC
from repro.resilience.errors import EXIT_INPUT, ReproError


def test_loader_error_is_typed():
    assert issubclass(LoaderError, ReproError)
    assert issubclass(LoaderError, ValueError)  # legacy catch sites
    assert LoaderError.code == "REPRO-IMAGE"
    assert LoaderError.exit_code == EXIT_INPUT


def test_decoding_error_is_typed():
    assert issubclass(DecodingError, ReproError)
    assert issubclass(DecodingError, ValueError)
    assert DecodingError.code == "REPRO-IMAGE"


def test_pc_relative_load_outside_text_rejected():
    # ldr r0, [pc, #4088] points far past this two-word image
    word = encode(Instruction("ldr", (Reg(0), Mem(PC, 4088))))
    exit_ = encode(Instruction("swi", (Imm(0),)))
    image = Image(text=[word, exit_])
    with pytest.raises(LoaderError, match="outside the text section"):
        load_image(image)


def test_unaligned_pc_relative_load_rejected():
    word = encode(Instruction("ldr", (Reg(0), Mem(PC, 2))))
    pool = 0x12345678
    image = Image(text=[word, encode(Instruction("swi", (Imm(0),))), pool])
    with pytest.raises(LoaderError, match="unaligned|outside"):
        load_image(image)


def test_branch_outside_text_rejected():
    b = encode(Instruction("b", (LabelRef("loc_00010000"),)),
               branch_offset_words=(0x10000 - 0x8008) // 4)
    image = Image(text=[b, encode(Instruction("swi", (Imm(0),)))])
    with pytest.raises(LoaderError, match="outside the text section"):
        load_image(image)


def test_unreferenced_undecodable_word_rejected():
    # garbage that is not the target of any pc-relative load cannot be
    # reclassified as interwoven data
    garbage = 0xE7FFFFFF  # undefined-instruction space
    image = Image(text=[garbage, encode(Instruction("swi", (Imm(0),)))])
    with pytest.raises(LoaderError, match="not referenced as data"):
        load_image(image)
