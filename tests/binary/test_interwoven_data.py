"""Interwoven data (literal pools) — paper §2.1 step 5 and Fig. 10."""

import pytest

from repro.binary.image import DATA_BASE, TEXT_BASE, Image
from repro.binary.layout import layout
from repro.binary.loader import LoaderError, load_image
from repro.sim.machine import run_image

from tests.conftest import module_from_source


def test_pool_words_detected_even_when_decodable():
    """A pool word that happens to decode as a valid instruction must
    still be classified as data (the paper's fixpoint rule)."""
    module = module_from_source(
        """
        _start:
            ldr r0, =big
            ldr r0, [r0]
            swi #2
            mov r0, #0
            bx lr
        .data
        big: .word 77
        """
    )
    image = layout(module)
    # the pool holds DATA_BASE = 0x40000, which decodes as andeq-ish
    assert DATA_BASE in image.text
    recovered = load_image(image)
    result = run_image(layout(recovered))
    assert result.output_text == "77"


def test_numeric_literal_pool_roundtrip():
    module = module_from_source(
        """
        _start:
            ldr r0, =305419896
            swi #2
            mov r0, #0
            bx lr
        """
    )
    image = layout(module)
    assert 305419896 in image.text
    recovered = load_image(image)
    assert run_image(layout(recovered)).output_text == "305419896"


def test_pool_shared_within_function():
    """Two loads of the same literal share one pool slot."""
    module = module_from_source(
        """
        _start:
            ldr r0, =99999
            ldr r1, =99999
            add r0, r0, r1
            swi #2
            mov r0, #0
            bx lr
        """
    )
    image = layout(module)
    assert image.text.count(99999) == 1
    assert run_image(image).output_text == "199998"


def test_per_function_pools():
    """Each function gets its own pool (pc-relative range discipline)."""
    module = module_from_source(
        """
        _start:
            bl f
            bl g
            add r0, r0, r1
            swi #2
            mov r0, #0
            swi #0
        f:
            ldr r0, =11111
            mov pc, lr
        g:
            ldr r1, =11111
            mov pc, lr
        """
    )
    image = layout(module)
    assert image.text.count(11111) == 2  # one slot per function
    assert run_image(image).output_text == "22222"


def test_function_pointer_table_survives_roundtrip():
    module = module_from_source(
        """
        _start:
            ldr r0, =table
            ldr r1, [r0]
            bx r1
        handler:
            mov r0, #5
            swi #2
            mov r0, #0
            swi #0
        .data
        table: .word handler
        """
    )
    image = layout(module)
    assert run_image(image).output_text == "5"
    recovered = load_image(image)
    # the loader spotted the code address inside data
    assert any(f.pa_exempt for f in recovered.functions)
    assert run_image(layout(recovered)).output_text == "5"


def test_truly_undecodable_unreferenced_word_rejected():
    image = layout(module_from_source("_start:\n swi #0\n"))
    image.text.append(0xFFFFFFFF)  # junk beyond the program
    with pytest.raises(LoaderError):
        load_image(image)
