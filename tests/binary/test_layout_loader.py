"""Layout (link) and loader (decompile): the binary <-> program loop."""

import pytest

from repro.binary.image import DATA_BASE, TEXT_BASE, Image
from repro.binary.layout import LayoutError, layout
from repro.binary.loader import LoaderError, load_image
from repro.sim.machine import run_image

from tests.conftest import module_from_source

PROGRAM = """
.text
.global _start
_start:
    bl main
    swi #0
main:
    push {r4, lr}
    ldr r4, =numbers
    mov r0, #0
    mov r1, #0
loop:
    cmp r1, #5
    bge done
    add r3, r4, r1, lsl #2
    ldr r2, [r3]
    add r0, r0, r2
    add r1, r1, #1
    b loop
done:
    ldr r2, =1000000
    add r0, r0, r2
    pop {r4, pc}
.data
numbers:
    .word 10, 20, 30, 40, 50
"""


@pytest.fixture
def image():
    return layout(module_from_source(PROGRAM))


class TestLayout:
    def test_entry_and_bases(self, image):
        assert image.entry == TEXT_BASE
        assert image.data_base == DATA_BASE

    def test_data_contents(self, image):
        assert image.data == [10, 20, 30, 40, 50]

    def test_literal_pool_holds_data_address_and_constant(self, image):
        assert DATA_BASE in image.text        # address of `numbers`
        assert 1000000 in image.text          # raw constant literal

    def test_symbols(self, image):
        assert image.symbols["_start"] == TEXT_BASE
        assert "main" in image.symbols
        assert image.symbols["numbers"] == DATA_BASE

    def test_runs_correctly(self, image):
        result = run_image(image)
        # exit code is the low byte of 1000150
        assert result.exit_code == 1000150 % 256

    def test_undefined_label_rejected(self):
        module = module_from_source("_start:\n b nowhere\n")
        with pytest.raises(LayoutError):
            layout(module)

    def test_fallthrough_into_pool_rejected(self):
        module = module_from_source(
            """
            _start:
                ldr r0, =tab
            .data
            tab: .word 1
            """
        )
        with pytest.raises(LayoutError):
            layout(module)


class TestLoader:
    def test_roundtrip_behaviour(self, image):
        module = load_image(image)
        result = run_image(layout(module))
        assert result.exit_code == run_image(image).exit_code

    def test_roundtrip_reaches_fixpoint(self, image):
        once = layout(load_image(image))
        twice = layout(load_image(once))
        assert once.text == twice.text
        assert once.data == twice.data

    def test_pool_words_not_decoded_as_code(self, image):
        module = load_image(image)
        # the constant 1000000 must not appear as an instruction
        for func in module.functions:
            for insn in func.iter_instructions():
                assert "1000000" not in str(insn) or str(insn).startswith(
                    "ldr"
                )

    def test_symbol_names_recovered(self, image):
        module = load_image(image)
        names = [f.name for f in module.functions]
        assert names == ["_start", "main"]

    def test_loader_without_symbols(self, image):
        image.symbols = {}
        module = load_image(image)
        assert len(module.functions) == 2
        result = run_image(layout(module))
        assert result.exit_code == 1000150 % 256

    def test_instruction_counts_preserved(self, image):
        module = load_image(image)
        assert module.num_instructions == 16

    def test_truncated_image_rejected(self, image):
        # chop the image mid-function: branch targets fall outside
        broken = Image(
            text=image.text[:2],
            data=image.data,
            entry=image.entry,
        )
        with pytest.raises(LoaderError):
            load_image(broken)
