"""The ``.img`` container: serialization, parsing, typed failures."""

import pytest

from repro.binary.image import (
    IMG_MAGIC,
    IMG_VERSION,
    Image,
    ImageFormatError,
)
from repro.resilience.errors import EXIT_INPUT, ReproError


def sample_image() -> Image:
    return Image(
        text=[0xE3A00001, 0xEF000000],
        data=[1, 2, 0xDEADBEEF],
        entry=0x8000,
        symbols={"_start": 0x8000},
    )


def test_round_trip_preserves_sections_and_entry():
    image = sample_image()
    clone = Image.from_bytes(image.to_bytes())
    assert clone.text == image.text
    assert clone.data == image.data
    assert clone.text_base == image.text_base
    assert clone.data_base == image.data_base
    assert clone.entry == image.entry


def test_symbols_are_dropped_on_serialization():
    # the on-disk format models stripped firmware: naming only ever
    # lives in memory
    clone = Image.from_bytes(sample_image().to_bytes())
    assert clone.symbols == {}


def test_header_magic_and_version():
    blob = sample_image().to_bytes()
    assert blob[:4] == IMG_MAGIC
    assert int.from_bytes(blob[4:6], "little") == IMG_VERSION


def test_bad_magic_rejected():
    blob = b"NOPE" + sample_image().to_bytes()[4:]
    with pytest.raises(ImageFormatError, match="magic"):
        Image.from_bytes(blob)


def test_unsupported_version_rejected():
    blob = bytearray(sample_image().to_bytes())
    blob[4] = 99
    with pytest.raises(ImageFormatError, match="version"):
        Image.from_bytes(bytes(blob))


def test_truncated_header_rejected():
    with pytest.raises(ImageFormatError, match="truncated"):
        Image.from_bytes(b"RIMG\x01\x00")


def test_body_length_mismatch_rejected():
    blob = sample_image().to_bytes()
    with pytest.raises(ImageFormatError, match="body"):
        Image.from_bytes(blob[:-4])
    with pytest.raises(ImageFormatError, match="body"):
        Image.from_bytes(blob + b"\x00\x00\x00\x00")


def test_overlapping_sections_rejected_as_format_error():
    # a header whose bases overlap must surface as the typed format
    # error, not the dataclass's bare ValueError
    blob = bytearray(sample_image().to_bytes())
    # rewrite data_base (offset 12..16) to overlap the text section
    blob[12:16] = (0x8000).to_bytes(4, "little")
    with pytest.raises(ImageFormatError, match="overlaps"):
        Image.from_bytes(bytes(blob))


def test_format_error_is_a_typed_repro_error():
    assert issubclass(ImageFormatError, ReproError)
    assert issubclass(ImageFormatError, ValueError)
    assert ImageFormatError.code == "REPRO-IMAGE"
    assert ImageFormatError.exit_code == EXIT_INPUT
