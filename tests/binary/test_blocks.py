"""Function and basic-block splitting."""

import pytest

from repro.binary.blocks import SplitError, module_from_asm
from repro.isa.assembler import parse_program

from tests.conftest import module_from_source


def test_functions_split_at_call_targets():
    module = module_from_source(
        """
        _start:
            bl helper
            swi #0
        helper:
            mov pc, lr
        """
    )
    assert [f.name for f in module.functions] == ["_start", "helper"]


def test_uncalled_trailing_code_folds_into_previous_function():
    module = module_from_source(
        """
        _start:
            swi #0
        orphan:
            mov pc, lr
        """
    )
    assert [f.name for f in module.functions] == ["_start"]
    assert module.functions[0].num_instructions == 2


def test_block_leaders_at_branch_targets_and_after_terminators():
    module = module_from_source(
        """
        _start:
            mov r0, #0
        loop:
            add r0, r0, #1
            cmp r0, #5
            blt loop
            swi #0
        """
    )
    func = module.functions[0]
    # blocks: [mov], [add/cmp/blt], [swi]
    assert [len(b) for b in func.blocks] == [1, 3, 1]
    assert func.blocks[1].labels == ["loop"]


def test_conditional_branch_falls_through():
    module = module_from_source(
        """
        _start:
            cmp r0, #0
            beq skip
            mov r1, #1
        skip:
            swi #0
        """
    )
    blocks = module.functions[0].blocks
    assert blocks[0].falls_through
    assert blocks[1].falls_through
    # swi is not a control transfer, so the last block "falls through"
    # (off the end of the function; at runtime the swi exits first)
    assert blocks[2].falls_through
    assert blocks[2].labels == ["skip"]


def test_address_taken_function_is_exempt():
    module = module_from_source(
        """
        _start:
            ldr r0, =callback
            swi #0
        callback:
            mov pc, lr
        """
    )
    callback = module.function("callback")
    assert callback.pa_exempt
    assert not module.function("_start").pa_exempt


def test_function_pointer_in_data_marks_exempt():
    module = module_from_source(
        """
        .text
        _start:
            swi #0
        handler:
            mov pc, lr
        .data
        vector: .word handler
        """
    )
    # handler's address escapes through the jump table
    assert module.function("handler").pa_exempt


def test_entry_must_exist():
    with pytest.raises(SplitError):
        module_from_source("main:\n swi #0\n", entry="_start")


def test_duplicate_labels_rejected():
    with pytest.raises(SplitError):
        module_from_source("_start:\n_start2:\n swi #0\n_start2:\n swi #0\n")


def test_num_instructions():
    module = module_from_source(
        """
        _start:
            mov r0, #1
            mov r1, #2
            swi #0
        """
    )
    assert module.num_instructions == 3


def test_render_roundtrip():
    source = """
        _start:
            bl f
            swi #0
        f:
            push {lr}
            cmp r0, #3
            addlt r0, r0, #1
            pop {pc}
    """
    module = module_from_source(source)
    again = module_from_asm(parse_program(module.render()), entry="_start")
    assert again.render() == module.render()
    assert again.num_instructions == module.num_instructions
