"""Control-flow graphs and literal-pool helpers."""

import networkx as nx

from repro.binary.cfg import block_successors, build_cfg, reachable_blocks
from repro.binary.pools import (
    PoolPlan,
    pc_relative_target,
    plan_pool,
    pseudo_literal,
)
from repro.isa.assembler import parse_instruction
from repro.isa.operands import LabelRef

from tests.conftest import module_from_source


def test_cfg_loop_shape():
    module = module_from_source(
        """
        _start:
            mov r0, #0
        loop:
            add r0, r0, #1
            cmp r0, #5
            blt loop
            swi #0
        """
    )
    func = module.functions[0]
    graph = build_cfg(func)
    assert graph.has_edge(0, 1)          # fallthrough into loop
    assert graph.has_edge(1, 1)          # back edge
    assert graph.has_edge(1, 2)          # exit
    assert graph.edges[1, 1]["kind"] == "cond"


def test_cfg_external_branch():
    module = module_from_source(
        """
        _start:
            b elsewhere
        f:
            swi #0
        elsewhere:
            swi #0
        """
    )
    graph = build_cfg(module.functions[0])
    # 'elsewhere' lives in the same function here; build a real external:
    module2 = module_from_source(
        """
        _start:
            bl f
            swi #0
        f:
            b shared
        shared:
            mov pc, lr
        """
    )
    # shared is a branch target -> same function as f
    g2 = build_cfg(module2.function("f"))
    assert g2.number_of_nodes() >= 2


def test_reachable_blocks():
    module = module_from_source(
        """
        _start:
            b skip
            mov r0, #1
        skip:
            swi #0
        """
    )
    func = module.functions[0]
    reached = reachable_blocks(func)
    assert 0 in reached and 2 in reached
    assert 1 not in reached  # dead block


def test_block_successors_map():
    module = module_from_source(
        """
        _start:
            cmp r0, #0
            beq out
            mov r0, #1
        out:
            swi #0
        """
    )
    succ = block_successors(module.functions[0])
    assert set(succ[0]) == {1, 2}
    assert succ[1] == [2]


class TestPools:
    def test_plan_dedupes(self):
        insns = [
            parse_instruction("ldr r0, =table"),
            parse_instruction("ldr r1, =table"),
            parse_instruction("ldr r2, =other"),
        ]
        plan = plan_pool(insns)
        assert len(plan) == 2

    def test_slot_stable(self):
        plan = PoolPlan()
        a = plan.slot(LabelRef("x"))
        b = plan.slot(LabelRef("y"))
        assert plan.slot(LabelRef("x")) == a and a != b

    def test_pseudo_literal(self):
        assert pseudo_literal(parse_instruction("ldr r0, =tab")) == LabelRef(
            "tab"
        )
        assert pseudo_literal(parse_instruction("ldr r0, [r1]")) is None
        assert pseudo_literal(parse_instruction("add r0, r1, #1")) is None

    def test_pc_relative_target(self):
        insn = parse_instruction("ldr r0, [pc, #16]")
        assert pc_relative_target(insn, 0x8000) == 0x8000 + 8 + 16
        insn = parse_instruction("ldr r0, [pc, #-8]")
        assert pc_relative_target(insn, 0x8000) == 0x8000
        assert pc_relative_target(
            parse_instruction("ldr r0, [r1, #16]"), 0x8000
        ) is None
