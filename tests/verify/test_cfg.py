"""Module-wide CFG construction — the edge cases that motivated it.

Function segmentation background (see repro.binary.blocks): function
entries are the entry symbol and every ``bl`` target, so a label only
reached by plain ``b`` stays a *block* of the surrounding function —
which is exactly how cross-function tail edges arise.
"""

from repro.verify.cfg import build_module_cfg

from tests.conftest import module_from_source


def test_fall_through_does_not_cross_function_boundary():
    """A block that runs off the end of its function must NOT get an
    implicit edge into the next function (that is a lint error, not a
    control-flow fact)."""
    module = module_from_source(
        """
        _start:
            bl f
            bl g
            mov r0, #0
            swi #0
        f:
            mov r1, #1
        g:
            mov r2, #2
            mov pc, lr
        """
    )
    cfg = build_module_cfg(module)
    # f's only block neither returns nor branches; g follows physically
    # but is its own function (it is a bl target).
    assert ("g", 0) in cfg.blocks
    assert cfg.succ[("f", 0)] == []
    assert ("f", 0) not in cfg.pred[("g", 0)]


def test_fall_through_within_function_is_recorded():
    module = module_from_source(
        """
        _start:
            bl f
            mov r0, #0
            swi #0
        f:
            mov r1, #1
        inner:
            add r1, r1, #1
            cmp r1, #3
            bne inner
            mov pc, lr
        """
    )
    cfg = build_module_cfg(module)
    # "inner" is a block label (loop head), so f's entry block ends
    # without a terminator and plain fall-through stays inside f
    assert cfg.succ[("f", 0)] == [("f", 1)]
    assert set(cfg.succ[("f", 1)]) == {("f", 1), ("f", 2)}


def test_conditional_branch_records_target_and_fall_through():
    module = module_from_source(
        """
        _start:
            cmp r0, #0
            beq done
            mov r1, #1
        done:
            mov r0, #0
            swi #0
        """
    )
    cfg = build_module_cfg(module)
    succ = set(cfg.succ[("_start", 0)])
    assert succ == {("_start", 1), ("_start", 2)}
    # and the fall-through block then falls into the labelled one
    assert cfg.succ[("_start", 1)] == [("_start", 2)]


def test_unconditional_branch_suppresses_fall_through():
    module = module_from_source(
        """
        _start:
            b done
            mov r1, #1
        done:
            mov r0, #0
            swi #0
        """
    )
    cfg = build_module_cfg(module)
    assert cfg.succ[("_start", 0)] == [("_start", 2)]


def test_cross_function_label_resolution_shared_tail():
    """Cross-jumping creates tails that other functions branch into;
    the edges must resolve across function boundaries (the rijndael
    regression shape)."""
    module = module_from_source(
        """
        _start:
            bl f
            bl g
            swi #0
        f:
            mov r1, #1
            b shared
        g:
            mov r1, #2
            b shared
        shared:
            add r1, r1, #1
            mov pc, lr
        """
    )
    cfg = build_module_cfg(module)
    # "shared" is a block of g; f's branch still resolves into it
    tail = cfg.label_to_block["shared"]
    assert tail == ("g", 1)
    assert cfg.succ[("f", 0)] == [tail]
    assert cfg.succ[("g", 0)] == [tail]
    assert sorted(cfg.pred[tail]) == [("f", 0), ("g", 0)]


def test_return_block_has_no_successors():
    module = module_from_source(
        """
        _start:
            bl f
            mov r0, #0
            swi #0
        f:
            bx lr
        """
    )
    cfg = build_module_cfg(module)
    assert cfg.succ[("f", 0)] == []
    assert ("f", 0) in cfg.exits()


def test_entries_and_labels():
    module = module_from_source(
        """
        _start:
            bl f
            mov r0, #0
            swi #0
        f:
            mov pc, lr
        """
    )
    cfg = build_module_cfg(module)
    assert cfg.entries == [("_start", 0), ("f", 0)]
    assert cfg.label_to_block["f"] == ("f", 0)
