"""The interprocedural abstract interpreter: summaries, site events,
and the composition that motivated it (a frameless sp user swallowed by
a later ``push {lr}`` bracket clobbering the saved return address)."""

from repro.verify.absint import (
    AUDIT_SCHEMA,
    CALLER_WRITE,
    ERROR_KINDS,
    GROWTH_CYCLE,
    HEIGHT_MISMATCH,
    RETADDR_CLOBBER,
    UNINIT_READ,
    audit_module,
    module_summaries,
)

from tests.conftest import SHARED_FRAGMENT_PROGRAM, module_from_source

BALANCED = """
_start:
    bl f
    mov r0, #0
    swi #0
f:
    push {r4, lr}
    sub sp, sp, #8
    mov r4, #7
    str r4, [sp, #4]
    ldr r0, [sp, #4]
    add sp, sp, #8
    pop {r4, pc}
"""


def kinds(result):
    return {e.kind for e in result.events}


def test_balanced_program_is_clean():
    result = audit_module(module_from_source(BALANCED))
    assert result.ok
    assert result.events == []
    summary = result.summaries["f"]
    assert summary.net_delta == 0
    assert summary.height_known
    assert summary.max_height == 16
    assert not summary.fragile
    assert summary.retaddr_slots == (4,)


def test_shared_fragment_program_is_clean():
    result = audit_module(module_from_source(SHARED_FRAGMENT_PROGRAM))
    assert result.ok and result.events == []
    assert not any(s.fragile for s in result.summaries.values())


def test_frameless_sp_writer_is_fragile():
    module = module_from_source("""
_start:
    sub sp, sp, #4
    bl g
    add sp, sp, #4
    mov r0, #0
    swi #0
g:
    mov r1, #9
    str r1, [sp]
    mov pc, lr
""")
    result = audit_module(module)
    summary = result.summaries["g"]
    # g stores at its own entry sp: caller-owned memory, depth 0
    assert summary.caller_writes == (0,)
    assert summary.touches_caller_frame
    assert summary.fragile
    assert CALLER_WRITE in kinds(result)
    # a caller-frame write alone is a warning, not an error
    assert result.ok


def test_unbalanced_return_is_fragile():
    module = module_from_source("""
_start:
    bl leak
    add sp, sp, #8
    mov r0, #0
    swi #0
leak:
    sub sp, sp, #8
    mov pc, lr
""")
    summary = module_summaries(module)["leak"]
    assert summary.net_delta == 8
    assert summary.fragile


def test_retaddr_clobber_is_an_error():
    module = module_from_source("""
_start:
    bl f
    mov r0, #0
    swi #0
f:
    push {lr}
    mov r0, #1
    str r0, [sp]
    pop {pc}
""")
    result = audit_module(module)
    assert RETADDR_CLOBBER in kinds(result)
    assert not result.ok
    events = [e for e in result.events if e.kind == RETADDR_CLOBBER]
    assert events[0].function == "f"
    assert events[0].depth == 4


def test_fragility_propagates_through_callers():
    """The regression composition, statically: ``outer`` brackets a call
    to a frameless callee that stores through ``sp`` — the store lands
    on outer's saved return address."""
    module = module_from_source("""
_start:
    bl outer
    mov r0, #0
    swi #0
outer:
    push {lr}
    bl writer
    pop {pc}
writer:
    mov r1, #5
    str r1, [sp]
    mov pc, lr
""")
    result = audit_module(module)
    assert result.summaries["writer"].fragile
    assert RETADDR_CLOBBER in kinds(result)
    assert not result.ok
    clobbers = [e for e in result.events if e.kind == RETADDR_CLOBBER]
    assert any(e.function == "outer" for e in clobbers)


def test_uninit_read_is_a_warning():
    module = module_from_source("""
_start:
    bl f
    swi #0
f:
    sub sp, sp, #4
    ldr r0, [sp]
    add sp, sp, #4
    mov pc, lr
""")
    result = audit_module(module)
    assert UNINIT_READ in kinds(result)
    assert result.ok  # warning-severity: audit still passes


def test_growth_cycle_detected():
    module = module_from_source("""
_start:
    mov r0, #0
    bl grow
    mov r0, #0
    swi #0
grow:
    sub sp, sp, #4
    cmp r0, #0
    bne grow
    mov pc, lr
""")
    result = audit_module(module)
    assert kinds(result) & {GROWTH_CYCLE, HEIGHT_MISMATCH}
    assert not module_summaries(module)["grow"].height_known or \
        module_summaries(module)["grow"].fragile


def test_summaries_reach_fixpoint_quickly():
    result = audit_module(module_from_source(SHARED_FRAGMENT_PROGRAM))
    assert result.iterations <= 3


def test_payload_shape():
    result = audit_module(module_from_source(BALANCED))
    payload = result.to_payload(source="unit")
    assert payload["schema"] == AUDIT_SCHEMA
    assert payload["source"] == "unit"
    assert payload["ok"] is True
    assert payload["counts"] == {"events": 0, "errors": 0}
    assert set(payload["functions"]) == {"_start", "f"}
    fn = payload["functions"]["f"]
    assert fn["fragile"] is False and fn["net_delta"] == 0


def test_error_kinds_cover_exactly_the_unsound_events():
    assert ERROR_KINDS == {RETADDR_CLOBBER, HEIGHT_MISMATCH}
