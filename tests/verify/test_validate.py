"""The translation validator: clean rounds pass, corrupted rounds are
rejected with a ledger-recorded counterexample."""

import pytest

from repro.binary.program import BasicBlock, Function
from repro.isa.assembler import parse_instruction
from repro.pa.driver import PAConfig, apply_batch, collect_candidates
from repro.pa.liveness import lr_live_out_blocks
from repro.report import ledger
from repro.verify.validate import (
    RoundVerification,
    TranslationValidationError,
    outlined_body,
    snapshot_module,
    verify_round,
)

from tests.conftest import SHARED_FRAGMENT_PROGRAM, module_from_source


@pytest.fixture
def global_ledger():
    registry = ledger.get()
    registry.reset()
    yield registry
    registry.disable()
    registry.reset()


def one_round(module):
    """Snapshot, mine, and apply one extraction round; returns the
    arguments verify_round needs."""
    config = PAConfig(miner="edgar")
    snapshot = snapshot_module(module)
    pre_lr_live = lr_live_out_blocks(module)
    candidates = collect_candidates(module, config)
    records, __, ___ = apply_batch(module, config, candidates)
    assert records, "the shared-fragment program must yield an extraction"
    return snapshot, pre_lr_live, records


def test_clean_round_verifies():
    module = module_from_source(SHARED_FRAGMENT_PROGRAM)
    snapshot, pre_lr_live, records = one_round(module)
    result = verify_round(module, snapshot, records, pre_lr_live)
    assert isinstance(result, RoundVerification)
    assert result.blocks_checked >= 2  # both rewritten occurrences
    assert records[0].new_symbol in result.new_symbols


def test_corrupted_outlined_body_rejected(global_ledger):
    """Deliberately corrupt one rewritten path (an immediate in the
    outlined body) and demand rejection with a counterexample."""
    global_ledger.enable()
    module = module_from_source(SHARED_FRAGMENT_PROGRAM)
    snapshot, pre_lr_live, records = one_round(module)

    helper = module.function(records[0].new_symbol)
    block = helper.blocks[0]
    index, victim = next(
        (i, insn) for i, insn in enumerate(block.instructions)
        if insn.mnemonic == "sub"
    )
    block.instructions[index] = parse_instruction("sub r5, r4, #3")
    assert str(victim) != str(block.instructions[index])

    with pytest.raises(TranslationValidationError) as excinfo:
        verify_round(module, snapshot, records, pre_lr_live)

    ce = excinfo.value.counterexample
    assert ce is not None
    assert ce.resource.startswith("r")  # a register disagrees
    assert ce.old_term != ce.new_term

    recorded = global_ledger.records_of("verify.counterexample")
    assert recorded
    assert recorded[0]["function"] == ce.function
    assert recorded[0]["resource"] == ce.resource


def test_corrupted_caller_block_rejected():
    module = module_from_source(SHARED_FRAGMENT_PROGRAM)
    snapshot, pre_lr_live, records = one_round(module)

    # find a rewritten caller block (contains a bl to the new symbol)
    symbol = records[0].new_symbol
    target = None
    for func in module.functions:
        if func.name == symbol:
            continue
        for block in func.blocks:
            if any(i.is_call and i.label_target == symbol
                   for i in block.instructions):
                target = block
    assert target is not None
    index = next(
        i for i, insn in enumerate(target.instructions)
        if insn.mnemonic in ("mov", "add") and not insn.writes_pc
    )
    reg = target.instructions[index].operands[0]
    target.instructions[index] = parse_instruction(f"mvn {reg}, #0")

    with pytest.raises(TranslationValidationError):
        verify_round(module, snapshot, records, pre_lr_live)


def test_lint_regression_rejected(global_ledger):
    """A round that breaks a structural invariant fails the re-lint
    before any equivalence checking."""
    global_ledger.enable()
    module = module_from_source(SHARED_FRAGMENT_PROGRAM)
    snapshot, pre_lr_live, records = one_round(module)
    module.functions[0].blocks[0].instructions.insert(
        0, parse_instruction("b nowhere")
    )
    with pytest.raises(TranslationValidationError) as excinfo:
        verify_round(module, snapshot, records, pre_lr_live)
    assert excinfo.value.lint_report is not None
    assert not excinfo.value.lint_report.ok
    assert global_ledger.records_of("verify.lint")


def test_verify_round_emits_ledger_summary(global_ledger):
    global_ledger.enable()
    module = module_from_source(SHARED_FRAGMENT_PROGRAM)
    snapshot, pre_lr_live, records = one_round(module)
    verify_round(module, snapshot, records, pre_lr_live)
    summary = global_ledger.records_of("verify.round")
    assert summary
    assert summary[0]["blocks_checked"] >= 2


# ----------------------------------------------------------------------
# outlined_body
# ----------------------------------------------------------------------
def body_of(*texts):
    func = Function(name="pa_t", blocks=[BasicBlock(
        instructions=[parse_instruction(t) for t in texts]
    )])
    return [str(i) for i in outlined_body(func)]


def test_outlined_body_strips_lr_return():
    assert body_of("mov r1, #3", "add r2, r1, #5", "mov pc, lr") == [
        "mov r1, #3", "add r2, r1, #5"
    ]


def test_outlined_body_strips_push_pop_bracket():
    assert body_of(
        "push {lr}", "mov r1, #3", "bl helper", "pop {pc}"
    ) == ["mov r1, #3", "bl helper"]


def test_outlined_body_inverts_call_body():
    """Round-trip: stripping recovers exactly what extract.call_body
    wrapped, for both bracket shapes."""
    from repro.pa.extract import call_body

    for texts in (
        ["mov r1, #3", "add r2, r1, #5"],
        ["mov r1, #3", "bl helper", "add r2, r1, #5"],
    ):
        ordered = [parse_instruction(t) for t in texts]
        func = Function(name="pa_t", blocks=[
            BasicBlock(instructions=call_body(ordered))
        ])
        assert [str(i) for i in outlined_body(func)] == texts
