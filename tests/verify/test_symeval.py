"""Symbolic block evaluation: the equivalence engine under --verify."""

import pytest

from repro.isa.assembler import parse_instruction
from repro.isa.registers import LR, SP

from repro.verify.symeval import (
    FALL,
    BlockEvaluator,
    SymEvalError,
    add_const,
    select,
)


def insns(*texts):
    return [parse_instruction(t) for t in texts]


def ev(*texts, inline_calls=None, tails=None):
    return BlockEvaluator(
        inline_calls=inline_calls, tails=tails
    ).evaluate(insns(*texts))


# ----------------------------------------------------------------------
# term helpers
# ----------------------------------------------------------------------
def test_add_const_folds_chains():
    base = ("init", 4)
    assert add_const(add_const(base, 8), -8) == base
    assert add_const(("const", 3), 4) == ("const", 7)
    assert add_const(base, -4) == ("sub", base, ("const", 4))


def test_select_reads_through_disjoint_stores():
    sp = ("init", 13)
    mem = ("store", ("init", "mem"), sp, 4, ("const", 1))
    mem = ("store", mem, add_const(sp, 4), 4, ("const", 2))
    assert select(mem, sp, 4) == ("const", 1)
    assert select(mem, add_const(sp, 4), 4) == ("const", 2)


def test_select_stays_opaque_on_possible_alias():
    mem = ("store", ("init", "mem"), ("init", 1), 4, ("const", 1))
    loaded = select(mem, ("init", 2), 4)
    assert loaded[0] == "select"


# ----------------------------------------------------------------------
# straight-line equivalence
# ----------------------------------------------------------------------
def test_reordered_independent_instructions_equal():
    a = ev("mov r1, #3", "mov r2, #5", "add r3, r1, r2")
    b = ev("mov r2, #5", "mov r1, #3", "add r3, r1, r2")
    assert a.regs == b.regs
    assert a.flags == b.flags
    assert a.mem == b.mem
    assert a.exit == b.exit


def test_different_computation_differs():
    a = ev("add r3, r1, r2")
    b = ev("sub r3, r1, r2")
    assert a.regs[3] != b.regs[3]


def test_push_pop_roundtrip_restores_registers():
    state = ev("push {r4, r5}", "pop {r4, r5}")
    assert state.regs[4] == ("init", 4)
    assert state.regs[5] == ("init", 5)
    assert state.regs[SP] == ("init", SP)


def test_store_load_forwarding():
    state = ev("str r1, [sp, #-4]", "ldr r2, [sp, #-4]")
    assert state.regs[2] == ("init", 1)


def test_byte_load_is_zero_extended():
    state = ev("strb r1, [r0]", "ldrb r2, [r0]")
    assert state.regs[2] == ("zext8", ("init", 1))


def test_conditional_execution_merges():
    state = ev("cmp r0, #0", "moveq r1, #1")
    r1 = state.regs[1]
    assert r1[0] == "ite"
    assert r1[2] == ("const", 1)
    assert r1[3] == ("init", 1)


def test_exit_terms():
    assert ev("mov r1, #1").exit == FALL
    assert ev("b out").exit == ("label", "out")
    assert ev("bx lr").exit == ("init", LR)
    ret = ev("push {lr}", "pop {pc}")
    assert ret.exit == ("init", LR)
    assert ret.regs[SP] == ("init", SP)


def test_mid_block_transfer_rejected():
    with pytest.raises(SymEvalError):
        ev("b out", "mov r1, #1")


# ----------------------------------------------------------------------
# calls
# ----------------------------------------------------------------------
def test_opaque_calls_align_by_sequence_number():
    a = ev("bl f", "bl g")
    b = ev("bl f", "bl g")
    assert a.regs == b.regs and a.mem == b.mem
    # swapping callees changes the effect nodes
    c = ev("bl g", "bl f")
    assert a.regs[0] != c.regs[0]


def test_opaque_call_clobbers_scratch_only():
    state = ev("bl f")
    assert state.regs[0][0] == "fx"
    assert state.regs[4] == ("init", 4)  # callee-saved untouched
    assert state.flags[0] == "fx"


def test_inlined_call_matches_original_body():
    """The core --verify obligation: bl to this round's outlined symbol,
    with the body inlined back, equals the original straight-line code."""
    body = insns("mov r1, #3", "add r2, r1, #5")
    original = ev("mov r1, #3", "add r2, r1, #5", "mov r0, r2")
    rewritten = BlockEvaluator(
        inline_calls={"pa_0": body}
    ).evaluate(insns("bl pa_0", "mov r0, r2"))
    assert original.regs[0] == rewritten.regs[0]
    assert original.regs[2] == rewritten.regs[2]
    assert original.mem == rewritten.mem
    # lr differs by design: the bl wrote a retaddr marker
    assert rewritten.regs[LR] == ("retaddr", 0)


def test_inlined_call_does_not_consume_opaque_sequence():
    body = insns("mov r1, #3")
    a = BlockEvaluator(inline_calls={"pa_0": body}).evaluate(
        insns("bl pa_0", "bl ext")
    )
    b = ev("mov r1, #3", "bl ext")
    # the opaque call to ext gets sequence number 0 in both
    assert a.regs[0] == b.regs[0]


# ----------------------------------------------------------------------
# cross-jump tails
# ----------------------------------------------------------------------
def test_tail_following():
    tails = {"pa_tail": insns("add r1, r1, #1", "mov pc, lr")}
    merged = BlockEvaluator(tails=tails).evaluate(
        insns("mov r1, #2", "b pa_tail")
    )
    original = ev("mov r1, #2", "add r1, r1, #1", "mov pc, lr")
    assert merged.regs == original.regs
    assert merged.exit == original.exit


def test_tail_fall_through_rejected():
    tails = {"pa_tail": insns("add r1, r1, #1")}
    with pytest.raises(SymEvalError):
        BlockEvaluator(tails=tails).evaluate(insns("b pa_tail"))


def test_tail_chain_bounded():
    tails = {"loop": insns("b loop")}
    with pytest.raises(SymEvalError):
        BlockEvaluator(tails=tails).evaluate(insns("b loop"))
