"""The generic worklist solver: edge cases the bundled passes rarely
exercise — unreachable blocks, self-loops, empty blocks — plus the
convergence bound that turns a non-monotone analysis into a diagnosable
error instead of an infinite loop."""

import pytest

from repro.verify.cfg import build_module_cfg
from repro.verify.dataflow import (
    Analysis,
    ConvergenceError,
    FORWARD,
    MAX_VISITS_PER_BLOCK,
    solve,
)

from tests.conftest import module_from_source


class Reachability(Analysis):
    """Is this block reachable from an entry?  Monotone over {F < T}."""

    direction = FORWARD

    def boundary(self, cfg, key):
        return True

    def initial(self, cfg, key):
        return False

    def join(self, a, b):
        return a or b

    def transfer(self, key, block, fact):
        return fact


class Diverging(Analysis):
    """A deliberately non-monotone analysis: the out-fact changes on
    every visit, so a cyclic CFG never stabilises."""

    direction = FORWARD

    def boundary(self, cfg, key):
        return 0

    def initial(self, cfg, key):
        return 0

    def join(self, a, b):
        return max(a, b)

    def transfer(self, key, block, fact):
        return fact + 1


SELF_LOOP = """
_start:
    mov r0, #3
spin:
    sub r0, r0, #1
    cmp r0, #0
    bne spin
    mov r0, #0
    swi #0
"""

UNREACHABLE = """
_start:
    b live
dead:
    mov r1, #1
    mov r2, #2
live:
    mov r0, #0
    swi #0
"""


def test_unreachable_blocks_get_facts_and_stay_bottom():
    cfg = build_module_cfg(module_from_source(UNREACHABLE))
    result = solve(cfg, Reachability())
    # every block is solved, reachable or not
    assert set(result.in_facts) == set(cfg.keys)
    dead = next(k for k in cfg.keys if not cfg.pred[k]
                and k not in cfg.entries)
    assert result.in_facts[dead] is False
    assert all(result.in_facts[k] for k in cfg.entries)


def test_self_loop_converges():
    cfg = build_module_cfg(module_from_source(SELF_LOOP))
    loop = next(k for k in cfg.keys if k in cfg.succ[k])
    result = solve(cfg, Reachability())
    assert result.in_facts[loop] is True
    # the loop is visited a bounded number of times, not MAX_VISITS
    assert result.iterations < MAX_VISITS_PER_BLOCK


def test_block_without_instructions_flows_through():
    """A label immediately followed by another label yields a block
    with no instructions; transfer must still run and propagate."""
    module = module_from_source("""
_start:
    b hop
hop:
via:
    mov r0, #0
    swi #0
""")
    cfg = build_module_cfg(module)
    result = solve(cfg, Reachability())
    assert all(result.in_facts[k] for k in cfg.keys
               if cfg.pred[k] or k in cfg.entries)


def test_nonmonotone_analysis_raises_convergence_error():
    cfg = build_module_cfg(module_from_source(SELF_LOOP))
    with pytest.raises(ConvergenceError) as exc:
        solve(cfg, Diverging(), max_visits_per_block=8)
    assert "Diverging" in str(exc.value)
    assert "monotone" in str(exc.value)


def test_monotone_analysis_stays_far_below_the_default_bound():
    cfg = build_module_cfg(module_from_source(SELF_LOOP))
    result = solve(cfg, Reachability())
    assert result.iterations <= 4 * len(cfg.keys)
