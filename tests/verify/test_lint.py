"""The module linter: every rule fires on its counterexample and stays
quiet on clean code."""

import json

from repro.isa.assembler import parse_instruction

from repro.verify.lint import Severity, lint_module

from tests.conftest import SHARED_FRAGMENT_PROGRAM, module_from_source


def rules(report):
    return set(report.by_rule())


def findings_for(report, rule):
    return [f for f in report.findings if f.rule == rule]


CLEAN = """
_start:
    bl f
    mov r0, #0
    swi #0
f:
    push {r4, lr}
    mov r4, #1
    cmp r4, #0
    beq out
    add r4, r4, #1
out:
    mov r0, r4
    pop {r4, pc}
"""


def test_clean_module_has_no_errors():
    report = lint_module(module_from_source(CLEAN))
    assert report.ok
    assert report.errors == []


def test_shared_fragment_program_is_clean():
    report = lint_module(module_from_source(SHARED_FRAGMENT_PROGRAM))
    assert report.ok


def test_undefined_label():
    module = module_from_source(CLEAN)
    module.function("f").blocks[0].instructions.append(
        parse_instruction("b nowhere")
    )
    report = lint_module(module)
    found = findings_for(report, "undefined-label")
    assert found and found[0].severity is Severity.ERROR
    assert "nowhere" in found[0].message


def test_duplicate_label():
    module = module_from_source(CLEAN)
    module.function("f").blocks[0].labels.append("_start")
    report = lint_module(module)
    assert findings_for(report, "duplicate-label")
    assert not report.ok


def test_mid_block_transfer():
    module = module_from_source(CLEAN)
    block = module.function("f").blocks[0]
    block.instructions.insert(0, parse_instruction("b out"))
    report = lint_module(module)
    found = findings_for(report, "mid-block-transfer")
    assert found and found[0].severity is Severity.ERROR


def test_function_fallthrough():
    module = module_from_source(CLEAN)
    # drop f's return: its last block now runs off the function's end
    module.function("f").blocks[-1].instructions.pop()
    report = lint_module(module)
    assert findings_for(report, "function-fallthrough")


def test_stack_imbalance():
    module = module_from_source(CLEAN)
    # remove the push but keep the pop: returns at inconsistent depth
    blocks = module.function("f").blocks
    assert blocks[0].instructions[0].mnemonic == "push"
    del blocks[0].instructions[0]
    report = lint_module(module)
    assert (findings_for(report, "stack-imbalance")
            or findings_for(report, "stack-nonzero-return"))
    # a lone pop rises above the entry sp on the only return path
    assert not report.ok or findings_for(report, "stack-nonzero-return")


def test_undefined_flag_read():
    module = module_from_source(
        """
        _start:
            beq oops
            mov r0, #0
            swi #0
        oops:
            mov r0, #1
            swi #0
        """
    )
    report = lint_module(module)
    found = findings_for(report, "undefined-flag-read")
    assert found and found[0].severity is Severity.ERROR
    assert "entry" in found[0].message


def test_flag_read_after_preserving_call_is_clean():
    """A bl between cmp and the consumer is fine when the callee
    provably preserves NZCV — the false positive the interprocedural
    flag summaries exist to avoid."""
    module = module_from_source(
        """
        _start:
            cmp r0, #0
            bl helper
            beq done
            mov r1, #1
        done:
            mov r0, #0
            swi #0
        helper:
            add r2, r2, #1
            bx lr
        """
    )
    report = lint_module(module)
    assert not findings_for(report, "undefined-flag-read")


def test_unreachable_block_is_warning():
    module = module_from_source(
        """
        _start:
            b done
        dead:
            mov r1, #1
        done:
            mov r0, #0
            swi #0
        """
    )
    report = lint_module(module)
    found = findings_for(report, "unreachable-block")
    assert found and found[0].severity is Severity.WARNING
    assert report.ok  # warnings don't fail the lint


def test_report_json_shape():
    report = lint_module(module_from_source(CLEAN))
    payload = json.loads(report.to_json())
    assert payload["schema"] == "repro.verify.lint/2"
    assert payload["ok"] is True
    assert set(payload["counts"]) == {"info", "warning", "error"}
    assert isinstance(payload["findings"], list)


def test_render_mentions_rule_and_location():
    module = module_from_source(CLEAN)
    module.function("f").blocks[0].instructions.append(
        parse_instruction("b nowhere")
    )
    text = lint_module(module).render()
    assert "[undefined-label]" in text
    assert "f, block 0" in text
