"""The concrete dataflow passes: liveness, undef, flags, stack depth."""

from repro.dfg.builder import FLAGS
from repro.isa.registers import LR

from repro.verify.cfg import build_module_cfg
from repro.verify.passes import (
    flag_def_use,
    flag_effect_summaries,
    function_summaries,
    live_out_blocks,
    liveness,
    maybe_undef,
    stack_depths,
)

from tests.conftest import module_from_source


# ----------------------------------------------------------------------
# liveness
# ----------------------------------------------------------------------
def test_liveness_general_register():
    module = module_from_source(
        """
        _start:
            mov r4, #7
            cmp r0, #0
            beq skip
            add r4, r4, #1
        skip:
            mov r0, r4
            swi #0
        """
    )
    result = liveness(module)
    # r4 is live out of both predecessor blocks of "skip"
    assert 4 in result.out_facts[("_start", 0)]
    assert 4 in result.out_facts[("_start", 1)]
    # consumed in the final block; nothing keeps it live after
    assert 4 not in result.out_facts[("_start", 2)]


def test_liveness_write_kills():
    module = module_from_source(
        """
        _start:
            mov r1, #1
            mov r1, #2
            mov r0, r1
            swi #0
        """
    )
    result = liveness(module)
    # single block: nothing live at entry except what swi reads and r1
    # chain is internal
    assert 1 not in result.in_facts[("_start", 0)]


def test_flags_live_between_cmp_and_branch():
    module = module_from_source(
        """
        _start:
            cmp r0, #0
            beq out
            mov r1, #1
        out:
            mov r0, #0
            swi #0
        """
    )
    result = liveness(module)
    # the cmp kills the incoming flags and the beq consumes them inside
    # block 0, so the flags are live neither at its entry nor its exit
    assert FLAGS not in result.in_facts[("_start", 0)]
    assert FLAGS not in result.out_facts[("_start", 0)]


def test_live_out_blocks_matches_lr_wrapper():
    module = module_from_source(
        """
        _start:
            bl f
            swi #0
        f:
            mov r1, #1
            cmp r1, #0
            beq out
            add r1, r1, #1
        out:
            mov pc, lr
        """
    )
    from repro.pa.liveness import lr_live_out_blocks

    assert lr_live_out_blocks(module) == live_out_blocks(module, LR)


# ----------------------------------------------------------------------
# maybe-undefined
# ----------------------------------------------------------------------
def test_maybe_undef_flags_at_entry_and_after_call():
    module = module_from_source(
        """
        _start:
            bl f
            mov r0, #0
            swi #0
        f:
            cmp r0, #0
            bx lr
        """
    )
    result = maybe_undef(module)
    assert FLAGS in result.in_facts[("_start", 0)]
    assert FLAGS in result.in_facts[("f", 0)]
    # after f's cmp the flags are defined at exit
    assert FLAGS not in result.out_facts[("f", 0)]


def test_maybe_undef_scratch_after_call():
    module = module_from_source(
        """
        _start:
            mov r1, #1
            bl f
            mov r0, r1
            swi #0
        f:
            bx lr
        """
    )
    result = maybe_undef(module)
    # r1 is caller-saved scratch: possibly garbage at _start's exit
    assert 1 in result.out_facts[("_start", 0)]


# ----------------------------------------------------------------------
# flag effect summaries + def-use
# ----------------------------------------------------------------------
def test_flag_summary_none_preserving_callee():
    module = module_from_source(
        """
        _start:
            bl f
            mov r0, #0
            swi #0
        f:
            add r1, r1, #1
            bx lr
        """
    )
    assert flag_effect_summaries(module)["f"] == "none"


def test_flag_summary_must_unconditional_cmp():
    module = module_from_source(
        """
        _start:
            bl f
            mov r0, #0
            swi #0
        f:
            cmp r1, #0
            bx lr
        """
    )
    assert flag_effect_summaries(module)["f"] == "must"


def test_flag_summary_must_when_every_path_defines():
    module = module_from_source(
        """
        _start:
            cmp r1, #0
            bl f
            mov r0, #0
            swi #0
        f:
            cmp r1, #4
            beq out
            bx lr
        out:
            cmp r1, #5
            bx lr
        """
    )
    # both of f's return paths pass a cmp -> must
    assert flag_effect_summaries(module)["f"] == "must"


def test_flag_summary_may_when_one_path_skips_the_write():
    module = module_from_source(
        """
        _start:
            cmp r1, #0
            bl f
            mov r0, #0
            swi #0
        f:
            beq setter
            bx lr
        setter:
            cmp r2, #4
            bx lr
        """
    )
    # the fall-through return leaves the caller's flags untouched while
    # the "setter" path rewrites them: writes on some paths only -> may
    assert flag_effect_summaries(module)["f"] == "may"


def test_flag_summary_transitive_through_helper():
    module = module_from_source(
        """
        _start:
            bl f
            mov r0, #0
            swi #0
        f:
            push {lr}
            bl g
            pop {pc}
        g:
            cmp r1, #0
            bx lr
        """
    )
    summaries = flag_effect_summaries(module)
    assert summaries["g"] == "must"
    assert summaries["f"] == "must"


def test_flag_def_use_transparent_call_keeps_definition():
    """The extractor's signature shape: cmp, then a bl to an outlined
    helper that preserves NZCV, then the conditional consumer."""
    module = module_from_source(
        """
        _start:
            cmp r0, #0
            bl helper
            beq done
            mov r1, #1
        done:
            mov r0, #0
            swi #0
        helper:
            add r2, r2, #1
            bx lr
        """
    )
    chains = flag_def_use(module)
    defs = chains[("_start", 0, 2)]  # the beq
    assert defs == frozenset({("set", "_start", 0, 0)})


def test_flag_def_use_must_call_is_definition_site():
    """A helper ending in cmp *returns* flags; the caller's consumer
    must see the call as the definition, not an error."""
    module = module_from_source(
        """
        _start:
            bl helper
            beq done
            mov r1, #1
        done:
            mov r0, #0
            swi #0
        helper:
            cmp r0, #0
            bx lr
        """
    )
    chains = flag_def_use(module)
    defs = chains[("_start", 0, 1)]  # the beq
    assert defs == frozenset({("set", "_start", 0, 0)})


def test_flag_def_use_entry_undef_reaches_reader():
    module = module_from_source(
        """
        _start:
            beq done
            mov r1, #1
        done:
            mov r0, #0
            swi #0
        """
    )
    chains = flag_def_use(module)
    assert ("undef", "_start") in chains[("_start", 0, 0)]


# ----------------------------------------------------------------------
# stack depth
# ----------------------------------------------------------------------
def test_stack_balanced_function_summary_zero():
    module = module_from_source(
        """
        _start:
            bl f
            mov r0, #0
            swi #0
        f:
            push {r4, lr}
            mov r4, #1
            pop {r4, pc}
        """
    )
    assert function_summaries(module)["f"] == 0


def test_stack_balanced_callee_is_transparent():
    module = module_from_source(
        """
        _start:
            bl f
            mov r0, #0
            swi #0
        f:
            push {r4, lr}
            mov r4, #1
            bl helper
            mov r0, r4
            pop {r4, pc}
        helper:
            add r4, r4, #1
            bx lr
        """
    )
    summaries = function_summaries(module)
    assert summaries["helper"] == 0
    assert summaries["f"] == 0
    cfg = build_module_cfg(module)
    result = stack_depths(module, cfg, summaries)
    # the push/pop bracket nets out: depth 0 leaving f's single block
    assert result.out_facts[("f", 0)] == frozenset({0})


def test_stack_depth_interprocedural():
    """A callee with a nonzero net effect shifts the caller's depth."""
    module = module_from_source(
        """
        _start:
            bl grow
            add sp, sp, #4
            mov r0, #0
            swi #0
        grow:
            sub sp, sp, #4
            bx lr
        """
    )
    summaries = function_summaries(module)
    assert summaries["grow"] == 4
    result = stack_depths(module, build_module_cfg(module), summaries)
    assert result.out_facts[("_start", 0)] == frozenset({0})
