"""Lattice laws for the abstract-interpretation domains.

The worklist solver terminates only if joins are monotone over
finite-height lattices, so the value/frame/state joins are checked
directly: commutativity, idempotence, BOT identity, UNINIT absorption,
and the interval widening caps that bound every ascending chain.
"""

import itertools

import pytest

from repro.verify.domains import (
    BOT,
    BOTTOM_STATE,
    EMPTY_FRAME,
    Interval,
    MAGNITUDE_CAP,
    RETADDR,
    StackAddr,
    TOP,
    UNINIT,
    WIDTH_CAP,
    add_values,
    allocate,
    const,
    deallocate,
    entry_state,
    frame_from_dict,
    join_frames,
    join_states,
    join_values,
    negate_value,
    retaddr_depths,
    stack_depth_of,
)

SAMPLES = [
    BOT, TOP, UNINIT, RETADDR,
    const(0), const(7), Interval(-4, 12),
    StackAddr(0), StackAddr(8), StackAddr(-4),
]


def test_join_is_commutative_and_idempotent():
    for a, b in itertools.product(SAMPLES, repeat=2):
        assert join_values(a, b) == join_values(b, a)
    for a in SAMPLES:
        assert join_values(a, a) == a


def test_bot_is_the_join_identity():
    for a in SAMPLES:
        assert join_values(BOT, a) == a
        assert join_values(a, BOT) == a


def test_uninit_absorbs_everything_but_bot():
    for a in SAMPLES:
        if a is BOT:
            continue
        assert join_values(UNINIT, a) is UNINIT


def test_distinct_kinds_join_to_top():
    assert join_values(const(1), StackAddr(4)) is TOP
    assert join_values(RETADDR, const(0)) is TOP
    assert join_values(StackAddr(4), StackAddr(8)) is TOP


def test_interval_join_widens_to_hull_then_top():
    assert join_values(const(1), const(5)) == Interval(1, 5)
    # the width cap converts unbounded chains into TOP
    assert join_values(const(0), const(WIDTH_CAP + 1)) is TOP
    assert join_values(const(0), const(MAGNITUDE_CAP + 1)) is TOP


def test_empty_interval_is_rejected():
    with pytest.raises(ValueError):
        Interval(3, 2)


def test_add_values_shifts_stack_addresses():
    # sub sp, sp, #8: sp := sp + (-8) deepens the stack by 8 bytes
    assert add_values(StackAddr(0), const(-8)) == StackAddr(8)
    assert add_values(const(4), StackAddr(8)) == StackAddr(4)
    # adding an unknown amount loses the address
    assert add_values(StackAddr(0), Interval(0, 8)) is TOP
    assert add_values(StackAddr(0), UNINIT) is UNINIT


def test_negate_value():
    assert negate_value(Interval(2, 5)) == Interval(-5, -2)
    assert negate_value(StackAddr(4)) is TOP
    assert negate_value(UNINIT) is UNINIT


def test_stack_depth_of():
    assert stack_depth_of(StackAddr(12)) == 12
    assert stack_depth_of(const(12)) is None
    assert stack_depth_of(TOP) is None


def test_frame_join_is_pointwise_and_drops_one_sided_slots():
    a = frame_from_dict({4: const(1), 8: RETADDR})
    b = frame_from_dict({4: const(3), 12: const(9)})
    joined = dict(join_frames(a, b))
    assert joined == {4: Interval(1, 3)}
    assert join_frames(a, a) == a


def test_allocate_marks_new_words_uninit():
    frame = allocate(EMPTY_FRAME, 0, 8)
    assert dict(frame) == {4: UNINIT, 8: UNINIT}
    # push over the allocation keeps the deeper slot
    frame = allocate(frame, 8, 12)
    assert dict(frame) == {4: UNINIT, 8: UNINIT, 12: UNINIT}


def test_deallocate_drops_slots_below_the_new_sp():
    frame = frame_from_dict({4: RETADDR, 8: const(1), 12: const(2)})
    assert dict(deallocate(frame, 8)) == {4: RETADDR, 8: const(1)}
    assert deallocate(frame, 0) == EMPTY_FRAME


def test_retaddr_depths():
    frame = frame_from_dict({4: RETADDR, 8: const(0), 16: RETADDR})
    assert retaddr_depths(frame) == (4, 16)


def test_entry_state_shape():
    state = entry_state()
    assert state.height == 0
    assert state.reg(13) == StackAddr(0)
    assert state.reg(14) is RETADDR
    assert state.reg(0) is TOP
    assert state.frame == EMPTY_FRAME
    assert not state.escaped and not state.bottom


def test_bottom_is_the_state_join_identity():
    state = entry_state().with_reg(4, const(7))
    assert join_states(BOTTOM_STATE, state) == state
    assert join_states(state, BOTTOM_STATE) == state


def test_state_join_merges_registers_and_sticky_escape():
    a = entry_state().with_reg(4, const(1))
    b = entry_state().with_reg(4, const(3))
    joined = join_states(a, b)
    assert joined.reg(4) == Interval(1, 3)
    assert joined.height == 0

    leaky = b.__class__(regs=b.regs, frame=b.frame, escaped=True)
    assert join_states(a, leaky).escaped


def test_with_reg_replaces_exactly_one_register():
    state = entry_state().with_reg(4, const(9))
    assert state.reg(4) == const(9)
    assert state.reg(5) is TOP
    assert state.reg(13) == StackAddr(0)
