"""Determinism parity: the verifier's findings are a function of the
module, never of the execution config that produced it.

The abstraction result is bit-identical for every worker count and
cache state (the scale engine's contract), so the lint report and the
audit payload over the abstracted module must serialize to the *same
bytes* across ``workers=1`` vs ``workers=4`` and cold vs warm fragment
cache."""

import json

from repro.pa.driver import PAConfig, run_pa
from repro.verify.absint import audit_module
from repro.verify.lint import lint_module

from tests.conftest import SHARED_FRAGMENT_PROGRAM, module_from_source


def _verifier_bytes(module) -> bytes:
    lint_payload = lint_module(module).to_dict()
    audit_payload = audit_module(module).to_payload(source="parity")
    return json.dumps([lint_payload, audit_payload],
                      sort_keys=True).encode()


def _abstract(workers: int, cache_dir=None) -> bytes:
    module = module_from_source(SHARED_FRAGMENT_PROGRAM)
    run_pa(module, PAConfig(
        workers=workers,
        fragment_cache=str(cache_dir) if cache_dir else None,
        time_budget=30.0,
    ))
    return _verifier_bytes(module)


def test_findings_identical_across_worker_counts():
    assert _abstract(workers=1) == _abstract(workers=4)


def test_findings_identical_cold_vs_warm_cache(tmp_path):
    cache = tmp_path / "fragcache"
    cold = _abstract(workers=1, cache_dir=cache)
    warm = _abstract(workers=1, cache_dir=cache)
    assert cold == warm
    assert cold == _abstract(workers=1)  # and cache-independent


def test_serial_engine_matches_scale_engine():
    module = module_from_source(SHARED_FRAGMENT_PROGRAM)
    run_pa(module, PAConfig(time_budget=30.0))
    assert _verifier_bytes(module) == _abstract(workers=1)
