"""Table/figure formatters."""

from repro.analysis.figures import format_fig11, format_fig12
from repro.analysis.tables import (
    Table1Row,
    format_table1,
    format_table2,
    format_table3,
)
from repro.dfg.stats import DegreeHistogram, FanoutSummary

ROWS = [
    Table1Row("alpha", 1000, 10, 15, 25),
    Table1Row("beta", 2000, 20, 25, 45),
]


def test_table1_totals_and_ratio():
    text = format_table1(ROWS)
    assert "alpha" in text and "beta" in text
    assert "3000" in text       # total instructions
    assert "30" in text and "70" in text
    assert "2.33x" in text      # 70 / 30


def test_table1_empty_sfx_no_ratio():
    text = format_table1([Table1Row("x", 10, 0, 0, 0)])
    assert "improvement" not in text


def test_table2_fractions():
    text = format_table2({
        "alpha": FanoutSummary(high_degree=30, low_degree=70),
    })
    assert "30.00%" in text
    assert "total" in text


def test_table3_layout():
    hist = DegreeHistogram((5, 3, 1, 1, 0), (4, 4, 1, 1, 0))
    text = format_table3({"alpha": hist})
    assert "In" in text and "Out" in text
    assert text.count("alpha") == 1


def test_fig11_percentages():
    text = format_fig11(ROWS)
    assert "+50.0%" in text      # alpha DgSpan: (15-10)/10
    assert "+150.0%" in text     # alpha Edgar
    assert "average" in text


def test_fig11_handles_zero_sfx():
    text = format_fig11([Table1Row("x", 10, 0, 5, 5)])
    assert "Fig. 11" in text


def test_fig12_shares():
    text = format_fig12({"edgar": (9, 1), "sfx": (4, 0)})
    assert "10.0%" in text
    assert "edgar" in text and "sfx" in text


def test_fig12_empty_counts():
    text = format_fig12({"edgar": (0, 0)})
    assert "edgar" in text
