"""Code generation: execute compiled programs and check results."""

import pytest

from repro.minicc.driver import CompileError, compile_to_image, compile_to_module
from repro.sim.machine import run_image


def run_main(body: str, prelude: str = "", schedule: bool = True):
    source = f"{prelude}\nint main() {{ {body} }}\n"
    return run_image(compile_to_image(source, schedule=schedule))


class TestExpressions:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("1 + 2 * 3", 7),
            ("10 - 3 - 2", 5),
            ("7 & 3", 3),
            ("4 | 1", 5),
            ("5 ^ 1", 4),
            ("1 << 5", 32),
            ("64 >> 3", 8),
            ("~0 & 255", 255),
            ("-5 + 10", 5),
            ("!0", 1),
            ("!7", 0),
            ("3 < 4", 1),
            ("4 <= 4", 1),
            ("5 > 6", 0),
            ("5 >= 6", 0),
            ("5 == 5", 1),
            ("5 != 5", 0),
            ("1 && 2", 1),
            ("1 && 0", 0),
            ("0 || 3", 1),
            ("0 || 0", 0),
            ("100 / 7", 14),
            ("100 % 7", 2),
            ("-100 / 7", -14 % 256),
            ("0x7fffffff + 1 < 0", 1),  # wraps to INT_MIN
        ],
    )
    def test_expression_value(self, expr, expected):
        result = run_main(f"return {expr};")
        assert result.exit_code == expected % 256

    def test_division_by_zero_defined(self):
        assert run_main("return 5 / 0;").exit_code == 0
        assert run_main("return 5 % 0;").exit_code == 0

    def test_logical_shift_right(self):
        # >> is logical: sign bit does not smear
        result = run_main("return (0 - 1) >> 28;")
        assert result.exit_code == 15

    def test_variable_shifts(self):
        result = run_main(
            "int n = 3; int x = 5; return (x << n) | (x >> n);"
        )
        assert result.exit_code == 40

    def test_large_constant_via_pool(self):
        result = run_main("print_int(305419896); return 0;")
        assert result.output_text == "305419896"

    def test_deep_expression_rejected_cleanly(self):
        deep = "(((1+2)*(3+4))+((5+6)*(7+8)))*(((1+2)*(3+4))+((5+6)*(7+8)))"
        try:
            run_main(f"return {deep} & 255;")
        except CompileError as exc:
            assert "scratch" in str(exc)


class TestControlFlow:
    def test_if_else(self):
        body = "int x = 5; if (x > 3) { return 1; } else { return 2; }"
        assert run_main(body).exit_code == 1

    def test_while_loop(self):
        body = "int i = 0; int s = 0; while (i < 10) { s = s + i; i = i + 1; } return s;"
        assert run_main(body).exit_code == 45

    def test_for_loop(self):
        body = "int s = 0; int i; for (i = 1; i <= 5; i = i + 1) { s = s + i; } return s;"
        assert run_main(body).exit_code == 15

    def test_break_continue(self):
        body = (
            "int s = 0; int i; for (i = 0; i < 10; i = i + 1) {"
            " if (i == 3) { continue; }"
            " if (i == 6) { break; }"
            " s = s + i; } return s;"
        )
        assert run_main(body).exit_code == 0 + 1 + 2 + 4 + 5

    def test_call_in_loop_condition(self):
        prelude = "int dec(int x) { return x - 1; }"
        body = (
            "int n = 5; int c = 0;"
            " while (dec(n) > 0) { n = n - 1; c = c + 1; } return c;"
        )
        assert run_main(body, prelude).exit_code == 4

    def test_nested_loops(self):
        body = (
            "int s = 0; int i; int j;"
            " for (i = 0; i < 4; i = i + 1) {"
            "   for (j = 0; j < 4; j = j + 1) { s = s + 1; } }"
            " return s;"
        )
        assert run_main(body).exit_code == 16


class TestFunctionsAndData:
    def test_recursion(self):
        prelude = (
            "int fib(int n) { if (n < 2) { return n; }"
            " return fib(n - 1) + fib(n - 2); }"
        )
        assert run_main("return fib(10);", prelude).exit_code == 55

    def test_four_arguments(self):
        prelude = "int f(int a, int b, int c, int d) { return a*1000 + b*100 + c*10 + d; }"
        result = run_main("print_int(f(1, 2, 3, 4)); return 0;", prelude)
        assert result.output_text == "1234"

    def test_globals_persist(self):
        prelude = "int counter; int bump() { counter = counter + 1; return counter; }"
        body = "bump(); bump(); bump(); return counter;"
        assert run_main(body, prelude).exit_code == 3

    def test_array_read_write(self):
        prelude = "int t[10];"
        body = (
            "int i; for (i = 0; i < 10; i = i + 1) { t[i] = i * i; }"
            " return t[7];"
        )
        assert run_main(body, prelude).exit_code == 49

    def test_array_initializer(self):
        prelude = "int t[4] = {9, 8, 7};"
        assert run_main("return t[0] + t[2] + t[3];", prelude).exit_code == 16

    def test_many_locals_spill_to_stack(self):
        body = (
            "int a = 1; int b = 2; int c = 3; int d = 4; int e = 5;"
            " int f = 6; int g = 7; int h = 8; int i = 9; int j = 10;"
            " return a + b + c + d + e + f + g + h + i + j;"
        )
        assert run_main(body).exit_code == 55

    def test_stack_locals_in_loop(self):
        # regression: duplicate names in sibling scopes share one slot
        body = (
            "int a1=1; int a2=1; int a3=1; int a4=1; int a5=1; int a6=1;"
            " int total = 0; int i;"
            " for (i = 0; i < 3; i = i + 1) { int f = i + a6; total = total + f; }"
            " for (i = 0; i < 3; i = i + 1) { int f = i * 2; total = total + f; }"
            " return total;"
        )
        assert run_main(body).exit_code == (1 + 2 + 3) + (0 + 2 + 4)

    def test_string_literal_and_puts(self):
        result = run_main('puts_w("ok!"); return 0;')
        assert result.output_text == "ok!"

    def test_exit_intrinsic(self):
        result = run_main("exit(9); return 1;")
        assert result.exit_code == 9

    def test_mem_intrinsics_via_runtime(self):
        prelude = "int src[3] = {5, 6, 7}; int dst[3];"
        body = "memcpy_w(dst, src, 3); return dst[2];"
        assert run_main(body, prelude).exit_code == 7


class TestSchedulerEquivalence:
    SOURCE = """
    int t[8] = {3, 1, 4, 1, 5, 9, 2, 6};
    int main() {
        int s = 0;
        int i;
        for (i = 0; i < 8; i = i + 1) {
            s = s + t[i] * (i + 1) + (s >> 3);
        }
        print_int(s);
        return s & 127;
    }
    """

    def test_scheduled_and_unscheduled_agree(self):
        plain = run_image(compile_to_image(self.SOURCE, schedule=False))
        scheduled = run_image(compile_to_image(self.SOURCE, schedule=True))
        assert plain.output == scheduled.output
        assert plain.exit_code == scheduled.exit_code

    def test_scheduler_reorders_something(self):
        plain = compile_to_module(self.SOURCE, schedule=False)
        scheduled = compile_to_module(self.SOURCE, schedule=True)
        assert plain.num_instructions == scheduled.num_instructions
        assert plain.render() != scheduled.render()
