"""Semantic analysis: name resolution, arity, scoping rules."""

import pytest

from repro.minicc.parser import parse
from repro.minicc.sema import SemaError, analyze


def check(source):
    return analyze(parse(source))


def test_requires_main():
    with pytest.raises(SemaError):
        check("int f() { return 0; }")


def test_duplicate_global():
    with pytest.raises(SemaError):
        check("int g; int g; int main() { return 0; }")


def test_duplicate_function():
    with pytest.raises(SemaError):
        check("int f() { return 0; } int f() { return 0; } "
              "int main() { return 0; }")


def test_function_global_collision():
    with pytest.raises(SemaError):
        check("int f; int f() { return 0; } int main() { return 0; }")


def test_too_many_params():
    with pytest.raises(SemaError):
        check("int f(int a, int b, int c, int d, int e) { return 0; } "
              "int main() { return 0; }")


def test_undefined_variable():
    with pytest.raises(SemaError):
        check("int main() { return nope; }")


def test_undefined_function():
    with pytest.raises(SemaError):
        check("int main() { return nope(); }")


def test_wrong_arity():
    with pytest.raises(SemaError):
        check("int f(int a) { return a; } int main() { return f(); }")


def test_intrinsic_arity():
    with pytest.raises(SemaError):
        check("int main() { putc(1, 2); }")


def test_assign_to_array_name():
    with pytest.raises(SemaError):
        check("int a[3]; int main() { a = 1; }")


def test_index_non_array():
    with pytest.raises(SemaError):
        check("int g; int main() { return g[0]; }")


def test_local_shadows_global_array():
    # a local scalar named like a global array: assignment hits the local
    check("int a[3]; int f(int a) { a = 1; return a; } "
          "int main() { return f(0); }")


def test_redeclaration_in_same_scope():
    with pytest.raises(SemaError):
        check("int main() { int x; int x; }")


def test_sibling_scopes_may_reuse_names():
    check("int main() { if (1) { int x; x = 1; } "
          "if (2) { int x; x = 2; } return 0; }")


def test_break_outside_loop():
    with pytest.raises(SemaError):
        check("int main() { break; }")


def test_continue_inside_loop_ok():
    check("int main() { while (1) { continue; } return 0; }")


def test_locals_collected_in_order():
    info = check("int f(int p) { int a; int b; return p; } "
                 "int main() { return f(1); }")
    assert info.functions["f"].locals == ["p", "a", "b"]


def test_division_flag():
    info = check("int main() { return 7 / 2; }")
    assert info.uses_division
    info = check("int main() { return 7 * 2; }")
    assert not info.uses_division


def test_array_name_as_address_value():
    check("int a[3]; int f(int p) { return p; } "
          "int main() { return f(a); }")
