"""mini-C front end: tokens and syntax trees."""

import pytest

from repro.minicc import ast
from repro.minicc.lexer import LexerError, tokenize
from repro.minicc.parser import ParseError, parse


class TestLexer:
    def test_numbers(self):
        tokens = tokenize("0 42 0xff")
        assert [t.value for t in tokens[:-1]] == [0, 42, 255]

    def test_char_literals(self):
        tokens = tokenize("'a' '\\n' '\\0'")
        assert [t.value for t in tokens[:-1]] == [97, 10, 0]

    def test_string_literal(self):
        tokens = tokenize('"hi\\n"')
        assert tokens[0].kind == "string" and tokens[0].value == "hi\n"

    def test_keywords_vs_idents(self):
        tokens = tokenize("int foo while whilex")
        kinds = [t.kind for t in tokens[:-1]]
        assert kinds == ["keyword", "ident", "keyword", "ident"]

    def test_operators_maximal_munch(self):
        tokens = tokenize("a<<=b")  # "<<" then "="
        values = [t.value for t in tokens[:-1]]
        assert values == ["a", "<<", "=", "b"]

    def test_comments(self):
        tokens = tokenize("a // line\n b /* block\n more */ c")
        assert [t.value for t in tokens[:-1]] == ["a", "b", "c"]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n\nc")
        assert [t.line for t in tokens[:-1]] == [1, 2, 4]

    def test_errors(self):
        with pytest.raises(LexerError):
            tokenize("`")
        with pytest.raises(LexerError):
            tokenize('"unterminated')
        with pytest.raises(LexerError):
            tokenize("/* unterminated")


class TestParser:
    def test_global_scalar(self):
        program = parse("int g; int main() { return 0; }")
        assert program.globals[0] == ast.GlobalVar(name="g")

    def test_global_array_with_init(self):
        program = parse("int t[4] = {1, 2, -3}; int main() { return 0; }")
        decl = program.globals[0]
        assert decl.size == 4 and decl.is_array and decl.init == (1, 2, -3)

    def test_too_many_initializers(self):
        with pytest.raises(ParseError):
            parse("int t[1] = {1, 2}; int main() { return 0; }")

    def test_precedence(self):
        program = parse("int main() { return 1 + 2 * 3; }")
        expr = program.functions[0].body[0].value
        assert isinstance(expr, ast.BinOp) and expr.op == "+"
        assert isinstance(expr.right, ast.BinOp) and expr.right.op == "*"

    def test_comparison_binds_looser_than_shift(self):
        program = parse("int main() { return 1 << 2 < 3; }")
        expr = program.functions[0].body[0].value
        assert expr.op == "<"

    def test_unary(self):
        program = parse("int main() { return -!~1; }")
        expr = program.functions[0].body[0].value
        assert (expr.op, expr.operand.op, expr.operand.operand.op) == (
            "-", "!", "~"
        )

    def test_if_else_chain(self):
        program = parse(
            "int main() { if (1) { } else if (2) { } else { return 3; } }"
        )
        stmt = program.functions[0].body[0]
        assert isinstance(stmt, ast.If)
        assert isinstance(stmt.else_body[0], ast.If)

    def test_for_loop_parts(self):
        program = parse(
            "int main() { int i; for (i = 0; i < 4; i = i + 1) { } }"
        )
        loop = program.functions[0].body[1]
        assert isinstance(loop, ast.For)
        assert loop.init is not None and loop.cond is not None
        assert loop.step is not None

    def test_for_loop_empty_parts(self):
        program = parse("int main() { for (;;) { break; } }")
        loop = program.functions[0].body[0]
        assert loop.init is None and loop.cond is None and loop.step is None

    def test_array_assignment(self):
        program = parse("int a[2]; int main() { a[1] = 5; }")
        stmt = program.functions[0].body[0]
        assert isinstance(stmt.target, ast.Index)

    def test_call_args(self):
        program = parse("int f(int a, int b) { return a; }"
                        "int main() { return f(1, 2 + 3); }")
        call = program.functions[1].body[0].value
        assert isinstance(call, ast.Call) and len(call.args) == 2

    def test_bad_assignment_target(self):
        with pytest.raises(ParseError):
            parse("int main() { 3 = 4; }")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("int main() { return 0 }")

    def test_while_single_statement_body(self):
        program = parse("int main() { int i; while (i < 3) i = i + 1; }")
        loop = program.functions[0].body[1]
        assert isinstance(loop, ast.While) and len(loop.body) == 1
