"""Compile driver: error propagation and the -S/-module/-image views."""

import pytest

from repro.binary.image import Image
from repro.binary.program import Module
from repro.minicc.driver import (
    CompileError,
    compile_to_asm,
    compile_to_image,
    compile_to_module,
)


def test_lexer_error_wrapped():
    with pytest.raises(CompileError):
        compile_to_asm("int main() { return `; }")


def test_parser_error_wrapped():
    with pytest.raises(CompileError):
        compile_to_asm("int main() { return ; ")


def test_sema_error_wrapped():
    with pytest.raises(CompileError):
        compile_to_asm("int main() { return ghost; }")


def test_codegen_error_wrapped():
    deep = "+".join(["(a*a)"] * 1)  # fine; build an actually deep one:
    expr = "a"
    for __ in range(8):
        expr = f"({expr} * ({expr} + 1))"
    with pytest.raises(CompileError):
        compile_to_asm(f"int main() {{ int a = 2; return {expr}; }}")


def test_asm_view_contains_runtime():
    asm = compile_to_asm("int main() { return 1 / 1; }")
    assert "__div:" in asm
    assert "print_int:" in asm


def test_asm_without_runtime():
    asm = compile_to_asm("int main() { return 0; }", link_runtime=False)
    assert "__div:" not in asm


def test_module_and_image_views_agree():
    source = "int main() { return 5; }"
    module = compile_to_module(source)
    image = compile_to_image(source)
    assert isinstance(module, Module)
    assert isinstance(image, Image)
    from repro.binary.layout import layout

    assert layout(module).text == image.text


def test_missing_runtime_symbol_fails_without_linking():
    with pytest.raises(CompileError):
        compile_to_asm("int main() { return print_int(3); }",
                       link_runtime=False)
