"""Code generation corner cases: call lowering, globals, bools."""

import pytest

from repro.minicc.driver import CompileError, compile_to_image
from repro.sim.machine import run_image


def run_src(source: str):
    return run_image(compile_to_image(source))


class TestCallLowering:
    def test_nested_calls(self):
        src = """
        int inc(int x) { return x + 1; }
        int main() { return inc(inc(inc(0))); }
        """
        assert run_src(src).exit_code == 3

    def test_call_in_binop(self):
        src = """
        int two() { return 2; }
        int main() { return two() * 3 + two(); }
        """
        assert run_src(src).exit_code == 8

    def test_call_as_array_index(self):
        src = """
        int t[4] = {10, 20, 30, 40};
        int pick() { return 2; }
        int main() { return t[pick()]; }
        """
        assert run_src(src).exit_code == 30

    def test_call_result_stored_to_array(self):
        src = """
        int t[4];
        int val() { return 9; }
        int main() { t[1] = val(); return t[1]; }
        """
        assert run_src(src).exit_code == 9

    def test_call_result_stored_to_global(self):
        src = """
        int g;
        int val() { return 5; }
        int main() { g = val(); return g; }
        """
        assert run_src(src).exit_code == 5

    def test_division_in_condition(self):
        src = """
        int main() {
            int x = 10;
            if (x / 3 == 3) { return 1; }
            return 0;
        }
        """
        assert run_src(src).exit_code == 1

    def test_division_in_while_condition(self):
        src = """
        int main() {
            int x = 100;
            int n = 0;
            while (x / 10 > 0) { x = x / 10; n = n + 1; }
            return n;
        }
        """
        assert run_src(src).exit_code == 2

    def test_call_in_and_rejected_cleanly(self):
        src = """
        int one() { return 1; }
        int main() { if (one() && 1) { return 1; } return 0; }
        """
        with pytest.raises(CompileError):
            run_src(src)


class TestBooleansAndConditions:
    def test_comparison_as_value(self):
        src = "int main() { int x = 5; int b = x > 3; return b; }"
        assert run_src(src).exit_code == 1

    def test_bool_value_of_and(self):
        src = "int main() { int a = 1; int b = 0; return (a && b) + 2 * (a || b); }"
        assert run_src(src).exit_code == 2

    def test_not_of_comparison(self):
        src = "int main() { return !(3 < 4); }"
        assert run_src(src).exit_code == 0

    def test_while_one_with_break(self):
        src = """
        int main() {
            int n = 0;
            while (1) { n = n + 1; if (n == 5) { break; } }
            return n;
        }
        """
        assert run_src(src).exit_code == 5

    def test_empty_else_branch(self):
        src = "int main() { if (0) { return 1; } else { } return 2; }"
        assert run_src(src).exit_code == 2

    def test_deeply_nested_ifs(self):
        src = """
        int main() {
            int x = 10;
            if (x > 0) { if (x > 5) { if (x > 9) { return 3; } return 2; } return 1; }
            return 0;
        }
        """
        assert run_src(src).exit_code == 3


class TestGlobalsAndArrays:
    def test_negative_initializer(self):
        src = "int g = -5; int main() { return g + 10; }"
        assert run_src(src).exit_code == 5

    def test_array_zero_fill(self):
        src = "int t[6] = {1}; int main() { return t[0] + t[5]; }"
        assert run_src(src).exit_code == 1

    def test_array_address_arithmetic_via_runtime(self):
        src = """
        int t[3] = {7, 8, 9};
        int main() { return __mem_load(t + 8); }
        """
        assert run_src(src).exit_code == 9

    def test_global_shadowed_by_param(self):
        src = """
        int x = 100;
        int f(int x) { return x + 1; }
        int main() { return f(1) + x; }
        """
        assert run_src(src).exit_code == 102

    def test_function_returning_nothing_defaults_zero(self):
        src = """
        int noop(int x) { x = x + 1; }
        int main() { return noop(5); }
        """
        assert run_src(src).exit_code == 0

    def test_early_return_in_loop(self):
        src = """
        int find(int needle) {
            int i;
            for (i = 0; i < 10; i = i + 1) {
                if (i * i >= needle) { return i; }
            }
            return -1;
        }
        int main() { return find(26); }
        """
        assert run_src(src).exit_code == 6
