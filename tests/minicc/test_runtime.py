"""The statically linked runtime (libmini): division, shifts, printing."""

import pytest

from repro.minicc.driver import compile_to_image
from repro.sim.machine import run_image


def run_expr(expr: str):
    source = f"int main() {{ print_int({expr}); return 0; }}"
    return run_image(compile_to_image(source)).output_text


@pytest.mark.parametrize(
    "a,b",
    [
        (100, 7), (7, 100), (0, 5), (1, 1), (1000000, 3), (81, 9),
        (2147483647, 2), (12345, 123),
    ],
)
def test_division_and_modulo(a, b):
    assert run_expr(f"{a} / {b}") == str(a // b)
    assert run_expr(f"{a} % {b}") == str(a % b)


@pytest.mark.parametrize(
    "a,b,expected",
    [
        (-100, 7, -14),   # C semantics: truncate toward zero
        (100, -7, -14),
        (-100, -7, 14),
    ],
)
def test_signed_division_truncates(a, b, expected):
    assert run_expr(f"({a}) / ({b})") == str(expected)


def test_signed_modulo_sign_of_dividend():
    assert run_expr("(-100) % 7") == "-2"
    assert run_expr("100 % (-7)") == "2"


def test_variable_shifts():
    source = """
    int main() {
        int i;
        for (i = 0; i < 8; i = i + 1) {
            print_int(__shl(1, i));
            putc(' ');
        }
        print_nl(0);
        for (i = 0; i < 4; i = i + 1) {
            print_int(__shr(128, i));
            putc(' ');
        }
        return 0;
    }
    """
    out = run_image(compile_to_image(source)).output_text
    assert out == "1 2 4 8 16 32 64 128 \n128 64 32 16 "


def test_print_int_edge_cases():
    assert run_expr("0") == "0"
    assert run_expr("-1") == "-1"
    assert run_expr("2147483647") == "2147483647"


def test_print_hex():
    source = """
    int main() {
        print_hex(0);
        print_nl(0);
        print_hex(0xdeadbeef);
        print_nl(0);
        return 0;
    }
    """
    out = run_image(compile_to_image(source)).output_text
    assert out == "00000000\ndeadbeef\n"


def test_memcpy_memset():
    source = """
    int a[4] = {1, 2, 3, 4};
    int b[4];
    int main() {
        memcpy_w(b, a, 4);
        memset_w(a, 9, 2);
        print_int(b[0] + b[3]);
        putc(' ');
        print_int(a[0] + a[1] + a[2] + a[3]);
        return 0;
    }
    """
    out = run_image(compile_to_image(source)).output_text
    assert out == "5 25"


def test_abs_min_max():
    source = """
    int main() {
        print_int(__abs(-7)); putc(' ');
        print_int(__abs(7)); putc(' ');
        print_int(__min(3, 9)); putc(' ');
        print_int(__max(3, 9));
        return 0;
    }
    """
    out = run_image(compile_to_image(source)).output_text
    assert out == "7 7 3 9"


def test_puts_w_returns_length():
    source = 'int main() { return puts_w("hello"); }'
    result = run_image(compile_to_image(source))
    assert result.output_text == "hello"
    assert result.exit_code == 5


# ----------------------------------------------------------------------
# INT_MIN operands (variance-fuzzer regression)
# ----------------------------------------------------------------------
# ``-a`` overflows back to INT_MIN when a == INT_MIN, which used to
# leave __mod's halving loop with a negative bound (``cur >= b`` never
# false): an infinite loop, found by the variance fuzzer (seed 24).
# The runtime now saturates a post-negation INT_MIN operand to INT_MAX;
# these tests pin both the termination and the documented saturation
# semantics.

INT_MIN_EXPR = "(0 - 2147483647 - 1)"


def test_mod_by_int_min_terminates():
    # the original hang: b == INT_MIN made ``cur >= b`` always true
    source = (f"int main() {{ print_int(5 % {INT_MIN_EXPR}); "
              "return 0; }")
    result = run_image(compile_to_image(source), max_steps=1_000_000)
    assert result.output_text == "5"   # matches C: 5 % INT_MIN == 5
    assert result.exit_code == 0


def test_div_by_int_min_is_zero():
    source = (f"int main() {{ print_int(5 / {INT_MIN_EXPR}); "
              "return 0; }")
    result = run_image(compile_to_image(source), max_steps=1_000_000)
    assert result.output_text == "0"   # matches C: 5 / INT_MIN == 0
    assert result.exit_code == 0


def test_int_min_dividend_saturates():
    # documented saturation semantics (not C): INT_MIN negates to
    # INT_MAX, so INT_MIN / 3 == -(INT_MAX / 3) and likewise for %
    source = (f"int main() {{ print_int({INT_MIN_EXPR} / 3); putc(' '); "
              f"print_int({INT_MIN_EXPR} % 3); return 0; }}")
    result = run_image(compile_to_image(source), max_steps=2_000_000)
    assert result.output_text == "-715827882 -1"
    assert result.exit_code == 0


def test_int_min_over_int_min_is_one():
    source = (f"int main() {{ print_int({INT_MIN_EXPR} / {INT_MIN_EXPR}); "
              "return 0; }")
    result = run_image(compile_to_image(source), max_steps=1_000_000)
    assert result.output_text == "1"
    assert result.exit_code == 0
