"""CompileConfig perturbation knobs: behaviour-preserving by contract.

Every knob must change *how* the code is generated without changing
what it computes — that is what makes the variance grid a valid
robustness probe (a behaviour difference between variants would be a
compiler bug, not a PA finding).
"""

import pytest

from repro.binary.layout import layout
from repro.minicc.driver import (
    CompileConfig,
    compile_to_asm,
    compile_to_module,
)
from repro.sim.machine import run_image

SOURCE = """
int g = 7;
int helper(int x, int y) {
    int t = x * y;
    if (t > 100) { t = t - 100; }
    return t ^ x;
}
int main() {
    int i;
    int acc = 1;
    for (i = 0; i < 10; i = i + 1) {
        acc = acc + helper(i, g);
        g = g ^ (acc >> 2);
    }
    print_int(acc); print_nl(0);
    print_int(g); print_nl(0);
    return 0;
}
"""

KNOB_CONFIGS = [
    pytest.param(CompileConfig(schedule=False), id="noschedule"),
    pytest.param(CompileConfig(schedule_window=8), id="window8"),
    pytest.param(CompileConfig(peephole=True), id="peephole"),
    pytest.param(CompileConfig(layout_seed=1), id="layout1"),
    pytest.param(CompileConfig(regalloc_seed=1), id="regalloc1"),
    pytest.param(
        CompileConfig(schedule=False, peephole=True, layout_seed=3,
                      regalloc_seed=5),
        id="all-at-once",
    ),
]


def _behaviour(config: CompileConfig):
    result = run_image(layout(compile_to_module(SOURCE, config=config)))
    return result.output, result.exit_code


@pytest.mark.parametrize("config", KNOB_CONFIGS)
def test_knobs_preserve_behaviour(config):
    assert _behaviour(config) == _behaviour(CompileConfig())


def test_default_config_matches_legacy_schedule_path():
    # the frozen default must stay bit-identical to the historical
    # build, or every baseline in the repo silently moves
    assert compile_to_asm(SOURCE) == compile_to_asm(
        SOURCE, config=CompileConfig()
    )


def test_peephole_strictly_shrinks_this_program():
    base = compile_to_asm(SOURCE)
    peep = compile_to_asm(SOURCE, config=CompileConfig(peephole=True))
    assert len(peep.splitlines()) < len(base.splitlines())


def test_layout_seed_permutes_functions_only():
    base = compile_to_asm(SOURCE)
    shuffled = compile_to_asm(SOURCE, config=CompileConfig(layout_seed=9))
    assert sorted(base.splitlines()) == sorted(shuffled.splitlines())


def test_regalloc_seed_renames_registers_only():
    base = compile_to_asm(SOURCE)
    permuted = compile_to_asm(
        SOURCE, config=CompileConfig(regalloc_seed=2)
    )
    # the shape is preserved: same line count, same mnemonic sequence
    base_ops = [line.split()[0] for line in base.splitlines() if line]
    perm_ops = [line.split()[0] for line in permuted.splitlines() if line]
    assert base_ops == perm_ops


def test_config_to_dict_round_trips_the_axes():
    config = CompileConfig(schedule=False, schedule_window=4,
                           peephole=True, layout_seed=2, regalloc_seed=3)
    assert config.to_dict() == {
        "schedule": False,
        "schedule_window": 4,
        "peephole": True,
        "layout_seed": 2,
        "regalloc_seed": 3,
    }
