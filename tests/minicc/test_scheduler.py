"""List scheduler: semantics preservation and reordering properties."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.binary.program import BasicBlock
from repro.dfg.builder import build_dfg
from repro.dfg.linearize import is_valid_order
from repro.isa.assembler import parse_instruction, parse_program
from repro.minicc.scheduler import schedule_block, schedule_module


def insns(*texts):
    return [parse_instruction(t) for t in texts]


def test_loads_hoisted_over_independent_computation():
    block = insns(
        "add r4, r4, #1",
        "add r4, r4, #2",
        "ldr r5, [r6]",
    )
    scheduled = schedule_block(block)
    assert str(scheduled[0]) == "ldr r5, [r6]"


def test_dependences_respected():
    block = insns(
        "ldr r5, [r6]",
        "add r4, r5, #1",
        "str r4, [r6]",
    )
    scheduled = schedule_block(block)
    assert [str(i) for i in scheduled] == [str(i) for i in block]


def test_terminator_stays_last():
    block = insns("ldr r5, [r6]", "mov r0, #1", "b out")
    scheduled = schedule_block(block)
    assert str(scheduled[-1]) == "b out"


def test_stores_sink():
    block = insns(
        "str r4, [r6]",
        "add r5, r5, #1",
        "add r7, r7, #1",
    )
    scheduled = schedule_block(block)
    assert str(scheduled[-1]) == "str r4, [r6]"


def test_tiny_blocks_untouched():
    block = insns("mov r0, #1", "mov r1, #2")
    assert schedule_block(block) == block


def test_schedule_module_keeps_labels_and_counts():
    module = parse_program(
        """
        _start:
            mov r4, #0
        loop:
            ldr r5, [r4]
            add r4, r4, #4
            cmp r4, #32
            blt loop
            swi #0
        """
    )
    scheduled = schedule_module(module)
    assert len(scheduled.text) == len(module.text)
    from repro.isa.assembler import Label

    labels = [i.name for i in scheduled.text if isinstance(i, Label)]
    assert labels == ["_start", "loop"]


_random_insns = st.lists(
    st.sampled_from(
        [
            "mov r0, #1", "add r0, r0, #1", "mov r1, r0", "ldr r2, [r1]",
            "str r2, [r0]", "mul r3, r1, r2", "cmp r3, #3",
            "movlt r4, #9", "eor r0, r0, r1", "bl callee",
            "ldr r5, [r0], #4",
        ]
    ),
    min_size=3,
    max_size=14,
)


@given(_random_insns)
@settings(max_examples=120)
def test_schedule_is_always_a_valid_reordering(texts):
    block = insns(*texts)
    scheduled = schedule_block(block)
    assert sorted(map(str, scheduled)) == sorted(texts)
    dfg = build_dfg(BasicBlock(instructions=block))
    order = [block.index(i) for i in scheduled]
    # resolve duplicates: map by consuming indices
    used = set()
    order = []
    remaining = {i: insn for i, insn in enumerate(block)}
    for insn in scheduled:
        match = next(
            i for i, other in sorted(remaining.items()) if other == insn
        )
        del remaining[match]
        order.append(match)
    # NOTE: with duplicate instructions the recovered permutation is not
    # unique; validity of *some* assignment is the meaningful property.
    if len(set(map(str, texts))) == len(texts):
        assert is_valid_order(dfg, order)
