"""Telemetry x pipeline integration + the disabled-is-inert guard."""

import pytest

from repro import telemetry
from repro.pa.driver import (
    PAConfig,
    apply_candidate,
    best_candidate,
    run_pa,
)

from tests.conftest import SHARED_FRAGMENT_PROGRAM, module_from_source


@pytest.fixture
def global_registry():
    """The process-global registry, reset and restored around the test."""
    registry = telemetry.get()
    registry.reset()
    yield registry
    registry.disable()
    registry.reset()


def _run(config=None):
    module = module_from_source(SHARED_FRAGMENT_PROGRAM)
    result = run_pa(module, config or PAConfig())
    return module, result


class TestDisabledGuard:
    def test_disabled_run_records_nothing(self, global_registry):
        assert not global_registry.enabled
        _run()
        assert global_registry.spans == []
        assert global_registry.counters == {}
        assert global_registry.events == []

    def test_results_identical_with_and_without_telemetry(
        self, global_registry
    ):
        baseline_module, baseline = _run()
        global_registry.enable()
        traced_module, traced = _run()
        assert traced_module.render() == baseline_module.render()
        assert traced.saved == baseline.saved
        assert traced.rounds == baseline.rounds
        assert traced.records == baseline.records
        assert traced.lattice_nodes == baseline.lattice_nodes


class TestEnabledPipeline:
    def test_run_pa_populates_registry(self, global_registry):
        global_registry.enable()
        __, result = _run()
        assert result.saved > 0
        counters = global_registry.counters
        assert counters["pa.runs"].value == 1
        assert counters["pa.rounds"].value == result.rounds
        assert (
            counters["mining.lattice_nodes"].value == result.lattice_nodes
        )
        assert counters["pa.instructions.saved"].value == result.saved
        assert counters["mining.embeddings_enumerated"].value > 0
        assert "mis.exact_components" in counters
        assert "mis.greedy_components" in counters
        span_names = {record.name for record in global_registry.spans}
        assert {"pa.run", "pa.round", "pa.collect", "mining.mine",
                "dfg.build"} <= span_names
        extraction_events = [
            e for e in global_registry.events if e["name"] == "pa.extraction"
        ]
        assert len(extraction_events) == len(result.records)
        round_events = [
            e for e in global_registry.events if e["name"] == "pa.round"
        ]
        assert [e["round"] for e in round_events] == list(
            range(result.rounds)
        )
        assert all("mine_seconds" in e for e in round_events)

    def test_round_spans_nest_under_run(self, global_registry):
        global_registry.enable()
        _run()
        by_ident = {r.ident: r for r in global_registry.spans}
        run_spans = [
            r for r in global_registry.spans if r.name == "pa.run"
        ]
        assert len(run_spans) == 1
        for record in global_registry.spans:
            if record.name == "pa.round":
                assert by_ident[record.parent].name == "pa.run"


class TestVerifiedRunTelemetry:
    def test_verify_cost_shows_up_in_registry(self, global_registry):
        global_registry.enable()
        __, result = _run(PAConfig(verify=True))
        assert result.saved > 0
        counters = global_registry.counters
        assert counters["verify.rounds"].value == result.rounds
        assert counters["verify.lint.runs"].value >= result.rounds
        assert counters["verify.equivalence.checks"].value > 0
        assert counters["verify.solver.runs"].value > 0
        assert counters["verify.solver.iterations"].value > 0
        span_names = {record.name for record in global_registry.spans}
        assert {"pa.verify", "verify.lint", "verify.pass"} <= span_names

    def test_verify_spans_nest_under_run(self, global_registry):
        global_registry.enable()
        _run(PAConfig(verify=True))
        by_ident = {r.ident: r for r in global_registry.spans}
        verify_spans = [
            r for r in global_registry.spans if r.name == "pa.verify"
        ]
        assert verify_spans
        for record in verify_spans:
            assert by_ident[record.parent].name == "pa.round"


class TestApplyCandidateRound:
    def test_direct_call_defaults_to_round_zero(self):
        module = module_from_source(SHARED_FRAGMENT_PROGRAM)
        config = PAConfig()
        candidate = best_candidate(module, config)
        assert candidate is not None
        record = apply_candidate(module, config, candidate)
        assert record.round == 0

    def test_explicit_round_is_stamped(self):
        module = module_from_source(SHARED_FRAGMENT_PROGRAM)
        config = PAConfig()
        candidate = best_candidate(module, config)
        record = apply_candidate(module, config, candidate, round=4)
        assert record.round == 4
