"""Exporter round-trips: Chrome trace, stats JSON, tree summary."""

import json

import pytest

from repro.telemetry import (
    Telemetry,
    chrome_trace,
    counters_summary,
    stats_dict,
    tree_summary,
    write_chrome_trace,
    write_stats,
)


@pytest.fixture
def populated():
    t = Telemetry()
    t.enable()
    with t.span("pa.run", miner="edgar"):
        with t.span("pa.round", round=0):
            with t.span("pa.collect"):
                t.count("mining.lattice_nodes", 10)
        with t.span("pa.round", round=1):
            t.count("mining.lattice_nodes", 7)
    t.observe("mis.component_size", 4)
    t.gauge("depth", 2)
    t.event("pa.extraction", method="call", benefit=5)
    return t


class TestChromeTrace:
    def test_round_trip_through_json(self, populated, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(populated, str(path))
        events = json.loads(path.read_text())
        assert isinstance(events, list)
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == len(populated.spans) == 4
        for event in complete:
            assert {"name", "ts", "dur", "pid", "tid"} <= set(event)
            assert event["ts"] >= 0 and event["dur"] >= 0

    def test_nesting_reflected_in_timestamps(self, populated):
        events = {
            (e["name"], e.get("args", {}).get("round")): e
            for e in chrome_trace(populated)
            if e["ph"] == "X"
        }
        run = events[("pa.run", None)]
        round0 = events[("pa.round", 0)]
        round1 = events[("pa.round", 1)]
        assert run["ts"] <= round0["ts"]
        assert round0["ts"] + round0["dur"] <= round1["ts"] + 1
        assert round1["ts"] + round1["dur"] <= run["ts"] + run["dur"] + 1

    def test_metadata_names_the_process(self, populated):
        events = chrome_trace(populated, process_name="bench")
        meta = [e for e in events if e["ph"] == "M"]
        assert meta and meta[0]["args"]["name"] == "bench"

    def test_metadata_names_every_thread(self, populated):
        import threading

        def worker():
            with populated.span("background"):
                pass

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        events = chrome_trace(populated)
        thread_meta = [
            e for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        # one label per distinct span track, covering every tid
        assert {e["tid"] for e in thread_meta} == {
            e["tid"] for e in events if e["ph"] == "X"
        }
        names = [e["args"]["name"] for e in thread_meta]
        assert names[0] == "main"
        assert any(name.startswith("worker-") for name in names[1:])

    def test_non_json_args_stringified(self):
        t = Telemetry()
        t.enable()
        with t.span("s", kinds=frozenset({"d"})):
            pass
        json.dumps(chrome_trace(t))  # must not raise


class TestStatsDump:
    def test_schema_and_sections(self, populated, tmp_path):
        path = tmp_path / "stats.json"
        write_stats(populated, str(path))
        stats = json.loads(path.read_text())
        assert stats["schema"] == "repro.telemetry.stats/2"
        assert stats["counters"]["mining.lattice_nodes"] == 17
        assert stats["gauges"]["depth"] == 2
        assert stats["histograms"]["mis.component_size"]["count"] == 1
        assert stats["histograms"]["mis.component_size"]["p50"] == 4
        assert stats["histograms"]["mis.component_size"]["p99"] == 4
        assert stats["events"] == [
            {"name": "pa.extraction", "method": "call", "benefit": 5}
        ]

    def test_span_aggregates(self, populated):
        spans = stats_dict(populated)["spans"]
        assert spans["pa.round"]["count"] == 2
        assert spans["pa.run"]["count"] == 1
        assert spans["pa.round"]["total_seconds"] >= (
            spans["pa.round"]["min_seconds"] * 2
        )
        assert spans["pa.round"]["max_seconds"] <= (
            spans["pa.run"]["total_seconds"] + 1e-6
        )


class TestTreeSummary:
    def test_tree_structure_and_counts(self, populated):
        text = tree_summary(populated)
        lines = text.splitlines()
        run_line = next(l for l in lines if l.lstrip().startswith("pa.run"))
        round_line = next(
            l for l in lines if l.lstrip().startswith("pa.round")
        )
        collect_line = next(
            l for l in lines if l.lstrip().startswith("pa.collect")
        )
        # indentation encodes the hierarchy
        assert run_line.index("pa.run") < round_line.index("pa.round")
        assert round_line.index("pa.round") < collect_line.index(
            "pa.collect"
        )
        assert round_line.split()[1] == "2"  # aggregated count

    def test_empty_registry(self):
        t = Telemetry()
        assert "(no spans recorded)" in tree_summary(t)
        assert "(no counters recorded)" in counters_summary(t)

    def test_counters_summary_lists_values(self, populated):
        text = counters_summary(populated)
        assert "mining.lattice_nodes" in text and "17" in text
