"""OpenMetrics exporter: format validity, counter ``_total`` suffixes,
summary quantiles, label escaping, per-shard timing families, and the
mandatory ``# EOF`` terminator."""

import re

from repro.telemetry import Telemetry, openmetrics_text, write_openmetrics

#: every non-comment line: <name>{labels}? <number>
_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9.e+-]+$"
)


def populated():
    t = Telemetry()
    t.enable()
    with t.span("pa.run"):
        with t.span("pa.round"):
            t.count("mining.lattice_nodes", 10)
    t.count("pa.rounds", 3)
    t.gauge("depth", 2)
    for value in (1, 2, 3, 4):
        t.observe("mis.component_size", value)
    return t


class TestFormat:
    def test_every_line_is_wellformed(self):
        text = openmetrics_text(populated())
        for line in text.splitlines():
            if line.startswith("#"):
                assert re.match(
                    r"^# (TYPE [a-zA-Z0-9_:]+ \w+|EOF)$", line
                )
            else:
                assert _SAMPLE.match(line), line

    def test_ends_with_eof(self):
        assert openmetrics_text(populated()).endswith("# EOF\n")
        assert openmetrics_text(Telemetry()).endswith("# EOF\n")

    def test_counters_get_total_suffix(self):
        text = openmetrics_text(populated())
        assert "# TYPE repro_pa_rounds counter" in text
        assert "repro_pa_rounds_total 3" in text
        assert "repro_mining_lattice_nodes_total 10" in text

    def test_gauge_and_summary(self):
        text = openmetrics_text(populated())
        assert "# TYPE repro_depth gauge" in text
        assert "repro_depth 2" in text
        assert "# TYPE repro_mis_component_size summary" in text
        assert 'repro_mis_component_size{quantile="0.5"}' in text
        assert "repro_mis_component_size_sum 10.0" in text
        assert "repro_mis_component_size_count 4" in text

    def test_span_aggregates(self):
        text = openmetrics_text(populated())
        assert 'repro_span_calls_total{span="pa.round"} 1' in text
        assert re.search(
            r'repro_span_seconds_total\{span="pa\.run"\} [0-9.e-]+',
            text,
        )

    def test_label_escaping(self):
        t = Telemetry()
        t.enable()
        with t.span('we"ird\nname'):
            pass
        text = openmetrics_text(t)
        assert '{span="we\\"ird\\nname"}' in text


class TestShardTimings:
    def test_per_shard_families(self):
        t = Telemetry()
        t.enable()
        for shard, seconds, nodes in ((0, 0.5, 10), (1, 1.5, 30),
                                      (0, 0.25, 5)):
            t.event("scale.shard.timing", shard=shard,
                    seconds=seconds, lattice_nodes=nodes)
        text = openmetrics_text(t)
        assert "# TYPE repro_scale_shard_seconds counter" in text
        assert 'repro_scale_shard_seconds_total{shard="0"} 0.75' in text
        assert 'repro_scale_shard_seconds_total{shard="1"} 1.5' in text
        assert ('repro_scale_shard_lattice_nodes_total{shard="0"} 15'
                in text)
        assert 'repro_scale_shard_rounds_total{shard="0"} 2' in text

    def test_other_events_ignored(self):
        t = Telemetry()
        t.enable()
        t.event("pa.extraction", benefit=5)
        assert "repro_scale_shard" not in openmetrics_text(t)


def test_write_is_atomic_and_terminated(tmp_path):
    path = tmp_path / "metrics.prom"
    write_openmetrics(populated(), str(path))
    assert path.read_text().endswith("# EOF\n")
