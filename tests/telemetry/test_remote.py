"""Cross-process capture/stitch: isolation of the capture scope,
snapshot structure, and merge semantics (attachment under the open
span, ident re-basing, counter/histogram accumulation)."""

import os

import pytest

from repro import telemetry
from repro.telemetry import Telemetry
from repro.telemetry.core import GLOBAL
from repro.telemetry.remote import (
    SNAPSHOT_SCHEMA,
    capture,
    merge_snapshot,
    snapshot,
)


def populate(registry):
    with registry.span("mining.mine", shard=1):
        with registry.span("mining.expand"):
            registry.count("mining.lattice_nodes", 5)
    registry.observe("mis.component_size", 3)
    registry.gauge("depth", 2)
    registry.event("probe", value=1)


@pytest.fixture
def global_registry():
    """capture() swaps state in the process-global registry only."""
    telemetry.reset()
    telemetry.enable()
    yield GLOBAL
    telemetry.disable()
    telemetry.reset()


class TestCapture:
    def test_capture_isolates_and_restores(self, global_registry):
        registry = global_registry
        registry.count("outer", 7)
        with registry.span("outer.span"):
            with capture() as captured:
                populate(registry)
            # the capture scope swallowed everything recorded inside it
            assert "mining.lattice_nodes" not in registry.counters
            assert registry.counter_value("outer") == 7
            # and the surrounding span stack survived the swap
            assert registry._stack()
        snap = captured.snapshot
        assert snap["schema"] == SNAPSHOT_SCHEMA
        assert snap["pid"] == os.getpid()
        assert snap["counters"]["mining.lattice_nodes"] == 5
        assert len(snap["spans"]) == 2
        assert snap["events"] == [{"name": "probe", "value": 1}]

    def test_disabled_capture_suppresses(self, global_registry):
        registry = global_registry
        with capture(enabled=False) as captured:
            populate(registry)
        assert captured.snapshot is None
        assert not registry.counters
        assert not registry.spans
        assert registry.enabled

    def test_snapshot_carries_absolute_starts(self):
        registry = Telemetry()
        registry.enable()
        populate(registry)
        snap = snapshot(registry)
        # absolute = epoch + relative, so rebasing onto another
        # registry's epoch reconstructs comparable timestamps
        for ident, parent, name, start, *_ in snap["spans"]:
            assert start >= registry._epoch


class TestMerge:
    def test_merge_attaches_under_open_span(self):
        worker = Telemetry()
        worker.enable()
        populate(worker)
        snap = snapshot(worker)
        snap["pid"] = 99999          # simulate a remote process

        parent = Telemetry()
        parent.enable()
        with parent.span("scale.mine"):
            merge_snapshot(parent, snap)
        roots = [r for r in parent.spans if r.parent is None]
        assert [r.name for r in roots] == ["scale.mine"]
        mine = next(r for r in parent.spans if r.name == "mining.mine")
        assert mine.parent == roots[0].ident
        assert mine.pid == 99999
        expand = next(
            r for r in parent.spans if r.name == "mining.expand"
        )
        assert expand.parent == mine.ident
        assert parent.remote_processes[99999] == "shard-worker"

    def test_merge_accumulates_metrics(self):
        parent = Telemetry()
        parent.enable()
        parent.count("mining.lattice_nodes", 2)
        parent.observe("mis.component_size", 10)
        for _ in range(2):
            worker = Telemetry()
            worker.enable()
            populate(worker)
            merge_snapshot(parent, snapshot(worker))
        assert parent.counter_value("mining.lattice_nodes") == 12
        hist = parent.histograms["mis.component_size"]
        assert hist.count == 3
        assert hist.total == 16
        assert parent.gauges["depth"].value == 2
        assert len(parent.events) == 2

    def test_merge_rebases_idents_without_collisions(self):
        parent = Telemetry()
        parent.enable()
        populate(parent)
        worker = Telemetry()
        worker.enable()
        populate(worker)
        merge_snapshot(parent, snapshot(worker))
        idents = [r.ident for r in parent.spans]
        assert len(idents) == len(set(idents))
        # parent/child links stay internally consistent after re-basing
        by_ident = {r.ident: r for r in parent.spans}
        for record in parent.spans:
            if record.parent is not None:
                assert record.parent in by_ident

    def test_merge_into_disabled_registry_is_inert(self):
        worker = Telemetry()
        worker.enable()
        populate(worker)
        parent = Telemetry()
        merge_snapshot(parent, snapshot(worker))
        assert not parent.spans and not parent.counters

    def test_merge_none_is_inert(self):
        parent = Telemetry()
        parent.enable()
        merge_snapshot(parent, None)
        assert not parent.spans


class TestChromeTraceMultiPid:
    def test_named_process_rows_per_pid(self):
        from repro.telemetry import chrome_trace

        worker = Telemetry()
        worker.enable()
        populate(worker)
        snap = snapshot(worker)
        snap["pid"] = 4242           # simulate a remote worker
        parent = Telemetry()
        parent.enable()
        with parent.span("scale.mine"):
            merge_snapshot(parent, snap)
        events = chrome_trace(parent)
        process_rows = {
            e["pid"]: e["args"]["name"] for e in events
            if e.get("ph") == "M" and e.get("name") == "process_name"
        }
        assert process_rows[os.getpid()] == "repro"
        assert process_rows[4242] == "shard-worker"
        thread_rows = [
            e for e in events
            if e.get("ph") == "M" and e.get("name") == "thread_name"
            and e["pid"] == 4242
        ]
        assert thread_rows, "worker threads must be named"
        span_pids = {e["pid"] for e in events if e.get("ph") == "X"}
        assert {os.getpid(), 4242} <= span_pids
