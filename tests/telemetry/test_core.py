"""Span nesting, metric aggregation, and the disabled fast path."""

import threading

import pytest

from repro.telemetry import Telemetry
from repro.telemetry.core import NULL_SPAN


@pytest.fixture
def registry():
    t = Telemetry()
    t.enable()
    return t


class TestSpans:
    def test_nesting_parent_links(self, registry):
        with registry.span("outer"):
            with registry.span("middle"):
                with registry.span("inner"):
                    pass
            with registry.span("middle"):
                pass
        names = [r.name for r in registry.spans]
        # children exit (and record) before their parents
        assert names == ["inner", "middle", "middle", "outer"]
        by_name = {}
        for record in registry.spans:
            by_name.setdefault(record.name, []).append(record)
        outer = by_name["outer"][0]
        assert outer.parent is None
        for middle in by_name["middle"]:
            assert middle.parent == outer.ident
        assert by_name["inner"][0].parent in {
            m.ident for m in by_name["middle"]
        }

    def test_span_timing_contains_children(self, registry):
        with registry.span("outer"):
            with registry.span("inner"):
                pass
        inner, outer = registry.spans
        assert outer.start <= inner.start
        assert inner.start + inner.duration <= (
            outer.start + outer.duration + 1e-6
        )

    def test_span_args_recorded(self, registry):
        with registry.span("round", round=3) as span:
            span.set(candidates=7)
        record = registry.spans[0]
        assert record.args == {"round": 3, "candidates": 7}

    def test_traced_decorator(self, registry):
        @registry.traced("compute")
        def double(x):
            return 2 * x

        assert double(21) == 42
        assert [r.name for r in registry.spans] == ["compute"]

    def test_spans_carry_thread_id(self, registry):
        def worker():
            with registry.span("worker"):
                pass

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        with registry.span("main"):
            pass
        by_name = {r.name: r for r in registry.spans}
        assert by_name["worker"].thread != by_name["main"].thread
        # spans on different threads never parent each other
        assert by_name["main"].parent is None
        assert by_name["worker"].parent is None


class TestMetrics:
    def test_counter_aggregation(self, registry):
        registry.count("hits")
        registry.count("hits")
        registry.count("hits", 5)
        assert registry.counter_value("hits") == 7
        assert registry.counter_value("missing", -1) == -1

    def test_gauge_last_write_wins(self, registry):
        registry.gauge("depth", 3)
        registry.gauge("depth", 9)
        assert registry.gauges["depth"].value == 9

    def test_histogram_summary(self, registry):
        for value in (1.0, 2.0, 3.0):
            registry.observe("latency", value)
        histogram = registry.histograms["latency"]
        assert histogram.count == 3
        assert histogram.total == 6.0
        assert histogram.min == 1.0
        assert histogram.max == 3.0
        assert histogram.mean == 2.0

    def test_histogram_percentiles_exact_below_reservoir(self, registry):
        for value in range(1, 101):
            registry.observe("latency", value)
        summary = registry.histograms["latency"].as_dict()
        assert summary["p50"] == 50
        assert summary["p90"] == 90
        assert summary["p99"] == 99

    def test_histogram_reservoir_bounded_and_deterministic(self):
        from repro.telemetry.metrics import MAX_SAMPLES, Histogram

        first, second = Histogram(), Histogram()
        for value in range(3 * MAX_SAMPLES):
            first.observe(value)
            second.observe(value)
        assert len(first.samples) <= MAX_SAMPLES
        assert first.stride > 1
        # no RNG: two identical streams retain identical samples
        assert first.samples == second.samples
        assert first.as_dict() == second.as_dict()
        # decimated percentiles stay close to the true quantiles
        total = 3 * MAX_SAMPLES
        assert abs(first.percentile(50) - total / 2) <= first.stride
        assert abs(first.percentile(99) - total * 0.99) <= 3 * first.stride

    def test_histogram_percentiles_empty(self):
        from repro.telemetry.metrics import Histogram

        assert Histogram().percentile(50) == 0.0

    def test_events_in_order(self, registry):
        registry.event("step", round=0)
        registry.event("step", round=1)
        assert [e["round"] for e in registry.events] == [0, 1]

    def test_thread_safety_of_counters(self, registry):
        def worker():
            for __ in range(1000):
                registry.count("shared")

        threads = [threading.Thread(target=worker) for __ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter_value("shared") == 4000


class TestDisabled:
    def test_disabled_records_nothing(self):
        t = Telemetry()
        assert not t.enabled
        with t.span("ignored", x=1):
            t.count("ignored")
            t.gauge("ignored", 1)
            t.observe("ignored", 1)
            t.event("ignored")
        assert t.spans == []
        assert t.counters == {}
        assert t.gauges == {}
        assert t.histograms == {}
        assert t.events == []

    def test_disabled_span_is_shared_null_object(self):
        t = Telemetry()
        assert t.span("a") is NULL_SPAN
        assert t.span("b", k=1) is NULL_SPAN
        assert NULL_SPAN.set(x=2) is NULL_SPAN

    def test_reset_clears_everything(self):
        t = Telemetry()
        t.enable()
        with t.span("s"):
            t.count("c")
        t.event("e")
        t.reset()
        assert t.spans == [] and t.counters == {} and t.events == []
        assert t.enabled  # reset preserves the flag
        with t.span("again"):
            pass
        assert len(t.spans) == 1
