"""The progress bus: routing, JSONL schema, TTY line, heartbeat rate
limit, straggler watchdog, bounded worker queue (drop-with-counter),
retry/quarantine tracking, and graceful degradation on the
``scale.progress`` fault point."""

import io
import json
import queue

import pytest

from repro.resilience import faultinject
from repro.telemetry import progress
from repro.telemetry.progress import EVENTS_SCHEMA, ProgressBus


@pytest.fixture(autouse=True)
def clean_faults():
    faultinject.disarm_all()
    yield
    faultinject.disarm_all()


@pytest.fixture(autouse=True)
def detached():
    """Every test starts (and ends) with no routing attached."""
    progress.worker_attach(None)
    yield
    progress.worker_attach(None)


class TestRouting:
    def test_publish_without_routing_is_inert(self):
        progress.publish("round.start", round=0)     # must not raise

    def test_activate_routes_and_restores(self):
        bus = ProgressBus()
        with progress.activate(bus):
            assert progress.active() is bus
            progress.publish("round.start", round=3)
        assert progress.active() is None
        assert bus.counts == {"stream.begin": 1, "round.start": 1}

    def test_publish_stamps_kind_ts_pid(self):
        bus = ProgressBus()
        seen = []
        bus.dispatch = seen.append
        with progress.activate(bus):
            progress.publish("shard.start", shard=2)
        (event,) = seen
        assert event["kind"] == "shard.start"
        assert event["shard"] == 2
        assert isinstance(event["ts"], float)
        assert isinstance(event["pid"], int)

    def test_heartbeat_is_rate_limited(self):
        bus = ProgressBus()
        with progress.activate(bus):
            for _ in range(50):
                progress.heartbeat(shard=1)
        # one per HEARTBEAT_INTERVAL; a tight loop gets exactly one
        assert bus.counts.get("heartbeat") == 1


class TestEventsStream:
    def test_jsonl_begins_with_schema_record(self, tmp_path):
        path = tmp_path / "events.jsonl"
        bus = ProgressBus(events_path=str(path))
        with progress.activate(bus):
            progress.publish("round.start", round=0)
            progress.publish("round.done", round=0, saved=4)
        bus.close()
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["kind"] == "stream.begin"
        assert lines[0]["schema"] == EVENTS_SCHEMA
        assert [l["kind"] for l in lines[1:]] == \
            ["round.start", "round.done"]

    def test_unwritable_path_degrades_not_raises(self, tmp_path, capsys):
        bus = ProgressBus(events_path=str(tmp_path / "no" / "dir.jsonl"))
        assert bus.broken
        bus.dispatch({"kind": "round.start"})        # inert, no raise
        assert "progress stream disabled" in capsys.readouterr().err


class TestTTY:
    def test_status_line_renders(self):
        tty = io.StringIO()
        bus = ProgressBus(tty=tty)
        bus._last_render = -1000.0
        bus.dispatch({"kind": "round.start", "round": 2})
        bus._last_render = -1000.0
        bus.dispatch({"kind": "round.shards", "shards": 5, "cached": 1})
        line = tty.getvalue().split("\r")[-1]
        assert "round 2" in line
        assert "shards 1/5" in line

    def test_close_finishes_the_line(self):
        tty = io.StringIO()
        bus = ProgressBus(tty=tty)
        bus.close()
        assert tty.getvalue().endswith("\n")


class TestWatchdog:
    def test_stale_shard_flagged_once(self, tmp_path):
        path = tmp_path / "events.jsonl"
        bus = ProgressBus(events_path=str(path), stall_after=0.0)
        bus.dispatch({"kind": "shard.start", "shard": 7})
        assert bus.stragglers() == [7]
        assert bus.stragglers() == []                # flagged once
        kinds = [json.loads(l)["kind"]
                 for l in path.read_text().splitlines()]
        assert kinds.count("shard.stalled") == 1

    def test_done_shard_never_flagged(self):
        bus = ProgressBus(stall_after=0.0)
        bus.dispatch({"kind": "shard.start", "shard": 7})
        bus.dispatch({"kind": "shard.done", "shard": 7})
        assert bus.stragglers() == []


class TestBoundedQueue:
    def test_worker_queue_is_bounded(self):
        bus = ProgressBus()
        q = bus.worker_queue()
        assert q._maxsize == progress.QUEUE_MAX
        bus.close()

    def test_full_queue_drops_counts_and_piggybacks(self):
        """A full queue never blocks or detaches the worker: events are
        dropped and counted, and the first event that fits carries the
        loss in its ``dropped`` field (then the counter resets)."""
        class FullQueue:
            def __init__(self):
                self.events = []
                self.full = True

            def put_nowait(self, event):
                if self.full:
                    raise queue.Full
                self.events.append(event)

        fq = FullQueue()
        progress.worker_attach(fq)
        progress.publish("shard.done", shard=1)
        progress.publish("shard.done", shard=2)
        assert fq.events == []                       # dropped, no raise
        fq.full = False
        progress.publish("shard.done", shard=3)
        progress.publish("shard.done", shard=4)
        assert fq.events[0]["dropped"] == 2
        assert "dropped" not in fq.events[1]         # counter reset

    def test_broken_queue_detaches_full_queue_does_not(self):
        class BrokenQueue:
            def put_nowait(self, event):
                raise OSError("broken pipe")

        progress.worker_attach(BrokenQueue())
        progress.publish("shard.done", shard=1)      # detaches, no raise
        assert progress._WORKER_QUEUE is None

    def test_parent_accumulates_drop_counts(self):
        bus = ProgressBus()
        bus.dispatch({"kind": "shard.done", "shard": 1, "dropped": 3})
        bus.dispatch({"kind": "shard.done", "shard": 2, "dropped": 2})
        assert bus.dropped == 5
        assert bus.counts["bus.dropped"] == 5


class TestRetryTracking:
    def test_retrying_shard_is_not_stalled_during_backoff(self):
        bus = ProgressBus(stall_after=0.0)
        bus.dispatch({"kind": "shard.start", "shard": 7})
        bus.dispatch({"kind": "shard.retry", "shard": 7, "attempt": 1})
        assert bus.stragglers() == []        # backing off, not stuck
        assert bus.status["retried"] == 1

    def test_quarantine_counts_only_unrecovered_drops(self):
        bus = ProgressBus()
        bus.dispatch({"kind": "shard.quarantined", "shard": 3,
                      "recovered": True})
        bus.dispatch({"kind": "shard.quarantined", "shard": 4,
                      "recovered": False})
        assert bus.status["quarantined"] == 1

    def test_status_line_shows_retries_and_quarantines(self):
        tty = io.StringIO()
        bus = ProgressBus(tty=tty)
        bus._last_render = -1000.0
        bus.dispatch({"kind": "shard.retry", "shard": 1, "attempt": 1})
        bus._last_render = -1000.0
        bus.dispatch({"kind": "shard.quarantined", "shard": 2,
                      "recovered": False})
        line = tty.getvalue().split("\r")[-1]
        assert "retried 1" in line
        assert "quarantined 1" in line


class TestFaultDegradation:
    def test_dispatch_fault_breaks_not_raises(self, capsys):
        bus = ProgressBus()
        faultinject.arm("scale.progress:raise")
        bus.dispatch({"kind": "round.start"})        # absorbs the fault
        assert bus.broken
        assert "progress stream disabled" in capsys.readouterr().err
        bus.dispatch({"kind": "round.done"})         # broken bus: inert

    def test_queue_fault_returns_none(self, capsys):
        bus = ProgressBus()
        faultinject.arm("scale.progress:raise")
        assert bus.worker_queue() is None
        assert bus.broken

    def test_interrupt_mode_propagates(self):
        bus = ProgressBus()
        faultinject.arm("scale.progress:interrupt")
        with pytest.raises(KeyboardInterrupt):
            bus.dispatch({"kind": "round.start"})
