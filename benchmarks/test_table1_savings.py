"""Table 1: saved instructions per program — SFX vs DgSpan vs Edgar.

Paper values (for shape comparison; our substrate is a reimplemented
toolchain, so absolute numbers differ):

    total instructions 36698; SFX 480, DgSpan 749, Edgar 1238
    => Edgar/SFX = 2.6x, and Edgar >= DgSpan on every program.
"""

import pytest

from repro.analysis.tables import format_table1
from repro.pa.driver import PAConfig, run_pa
from repro.workloads import PROGRAMS, compile_workload

from benchmarks.harness import suite_results


def test_table1(benchmark):
    # measured unit: one full Edgar run on the smallest workload
    def edgar_once():
        module = compile_workload("crc")
        return run_pa(module, PAConfig(miner="edgar")).saved

    saved = benchmark.pedantic(edgar_once, rounds=1, iterations=1)
    assert saved > 0

    results = suite_results()
    rows = results.table1_rows()
    print()
    print(format_table1(rows))

    totals = results.totals()
    # --- paper shape assertions -------------------------------------
    # every engine shrinks the suite
    assert totals["sfx"] > 0
    assert totals["dgspan"] > 0
    assert totals["edgar"] > 0
    # graph-based PA beats the suffix trie overall
    assert totals["edgar"] > totals["sfx"]
    # embedding counting beats graph counting overall
    assert totals["edgar"] >= totals["dgspan"]
    # Edgar is never behind DgSpan on any single program
    for row in rows:
        assert row.edgar >= row.dgspan, row.program
