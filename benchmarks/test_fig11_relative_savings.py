"""Fig. 11: relative increase of savings of graph-based PA over SFX.

Paper: Edgar improves on SFX by ~160% on average (factor 2.6 in total),
with rijndael the best case (+266%) and bitcnts the worst (+52%).
Our reimplemented substrate compresses the dynamic range, so the
assertions target the ordering properties rather than the magnitudes.
"""

from repro.analysis.figures import format_fig11

from benchmarks.harness import suite_results


def test_fig11(benchmark):
    results = benchmark.pedantic(suite_results, rounds=1, iterations=1)
    rows = results.table1_rows()
    print()
    print(format_fig11(rows))

    # Edgar stays at or near the baseline on every program (small
    # absolute slack: the reimplemented code generator hands the
    # sequence matcher some disconnected-but-contiguous duplication
    # that connected-subgraph mining cannot represent; see
    # EXPERIMENTS.md)
    for row in rows:
        assert row.edgar >= row.sfx - 4, row.program

    # and improves strictly overall
    totals = results.totals()
    assert totals["edgar"] > totals["sfx"]

    # Edgar's improvement over SFX is at least as large as DgSpan's
    # (embedding counting only ever adds occurrences)
    assert totals["edgar"] >= totals["dgspan"]
