"""Shared harness for the benchmark suite.

Running the three abstraction engines over all eight workloads is the
expensive part of every table/figure; this module computes it once per
process and caches the outcome, so individual benchmarks only pay for
the unit they actually measure.

Every engine run is verified against the workload's Python reference —
a benchmark row is only reported for *correct* transformations.

Run as a script, the harness writes a schema-versioned benchmark JSON
(``repro.bench/2``) for regression tracking::

    PYTHONPATH=src python benchmarks/harness.py --bench-out BENCH_all.json

``benchmarks/regress.py`` compares two such files with tolerance bands
(it reads both ``repro.bench/1`` and ``/2``; /2 adds the scale-engine
observability fields ``workers``/``shards``/``cache_hits``/
``lattice_nodes_reused`` to every graph-engine cell).
"""

from __future__ import annotations

import argparse
import functools
import json
import os
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

if __package__ in (None, ""):
    # executed as a script: make src/ importable without PYTHONPATH
    sys.path.insert(
        0,
        os.path.join(os.path.dirname(os.path.abspath(__file__)),
                     os.pardir, "src"),
    )

from repro import telemetry
from repro.analysis.tables import Table1Row
from repro.dfg.builder import build_dfgs
from repro.dfg.graph import FLOW_KINDS
from repro.pa.driver import PAConfig, PAResult, run_pa
from repro.pa.sfx import SFXConfig, run_sfx
from repro.resilience.atomicio import atomic_write_text
from repro.workloads import PROGRAMS, compile_workload, verify_workload

#: Engine configurations used for the headline comparison.
ENGINES = ("sfx", "dgspan", "edgar")

#: Version tag of the ``--bench-out`` JSON schema.  /2 is an additive
#: minor over /1: graph-engine cells gain the scale observability
#: fields (workers, shards, cache_hits, lattice_nodes_reused), zero
#: when the cell was mined by the legacy serial engine.
BENCH_SCHEMA = "repro.bench/2"

#: Default grid for the committed regression baseline (BENCH_all.json):
#: every bundled workload.  DgSpan is excluded: it exhausts its time
#: budget on the larger workloads, so its savings depend on wall-clock
#: speed — exactly what a regression baseline must not do.  sfx and
#: edgar terminate deterministically.
BASELINE_WORKLOADS = (
    "bitcnts", "crc", "dijkstra", "patricia", "qsort", "rijndael",
    "search", "sha",
)
BASELINE_ENGINES = ("sfx", "edgar")

#: Cells whose edgar run hits the wall-clock budget instead of
#: converging (so their savings would flap across hosts).  Historically
#: {("bitcnts", "edgar"), ("rijndael", "edgar")} — the sharded scale
#: engine made both converge well under the 180 s budget, so the set
#: is empty and the committed baseline covers the full grid.  The
#: baseline is generated with ``--workers 4``; regenerate it the same
#: way (the scale engine's results are worker-count-independent, but
#: the two heavy cells do not converge serially).
BASELINE_SKIP = frozenset()


@dataclass
class EngineRun:
    saved: int
    rounds: int
    calls: int
    crossjumps: int
    seconds: float
    lattice_nodes: int


@dataclass
class SuiteResults:
    """All engine runs over all workloads."""

    instructions: Dict[str, int] = field(default_factory=dict)
    runs: Dict[Tuple[str, str], EngineRun] = field(default_factory=dict)

    def table1_rows(self) -> List[Table1Row]:
        return [
            Table1Row(
                program=name,
                instructions=self.instructions[name],
                sfx=self.runs[(name, "sfx")].saved,
                dgspan=self.runs[(name, "dgspan")].saved,
                edgar=self.runs[(name, "edgar")].saved,
            )
            for name in PROGRAMS
        ]

    def totals(self) -> Dict[str, int]:
        return {
            engine: sum(
                self.runs[(name, engine)].saved for name in PROGRAMS
            )
            for engine in ENGINES
        }

    def mechanisms(self) -> Dict[str, Tuple[int, int]]:
        out = {}
        for engine in ENGINES:
            calls = sum(self.runs[(n, engine)].calls for n in PROGRAMS)
            xjumps = sum(self.runs[(n, engine)].crossjumps for n in PROGRAMS)
            out[engine] = (calls, xjumps)
        return out


def run_engine(name: str, engine: str, **overrides) -> Tuple[PAResult, float]:
    """Run one engine on one workload, verified; returns (result, secs).

    The run is wrapped in a ``bench.engine_run`` telemetry span and its
    headline numbers are published as a structured event, so a profiled
    benchmark session exports through the same registry as the CLI.
    """
    import time

    module = compile_workload(name)
    started = time.perf_counter()
    with telemetry.span("bench.engine_run", workload=name, engine=engine):
        if engine == "sfx":
            result = run_sfx(module, SFXConfig(**overrides)
                             if overrides else None)
        else:
            overrides.setdefault("time_budget", 180.0)
            result = run_pa(module, PAConfig(miner=engine, **overrides))
    elapsed = time.perf_counter() - started
    verify_workload(name, module)
    telemetry.count("bench.engine_runs")
    telemetry.event(
        "bench.engine_run",
        workload=name,
        engine=engine,
        saved=result.saved,
        rounds=result.rounds,
        seconds=elapsed,
        lattice_nodes=result.lattice_nodes,
    )
    return result, elapsed


@functools.lru_cache(maxsize=1)
def suite_results() -> SuiteResults:
    """The full (verified) engine x workload grid, computed once."""
    results = SuiteResults()
    for name in PROGRAMS:
        results.instructions[name] = compile_workload(name).num_instructions
        for engine in ENGINES:
            result, elapsed = run_engine(name, engine)
            results.runs[(name, engine)] = EngineRun(
                saved=result.saved,
                rounds=result.rounds,
                calls=result.call_extractions,
                crossjumps=result.crossjump_extractions,
                seconds=elapsed,
                lattice_nodes=result.lattice_nodes,
            )
    return results


@functools.lru_cache(maxsize=None)
def workload_dfgs(name: str, flow_only: bool = False):
    """DFG database of one workload (for the shape tables)."""
    module = compile_workload(name)
    kinds = FLOW_KINDS if flow_only else None
    if kinds is None:
        return build_dfgs(module, min_nodes=1)
    return build_dfgs(module, min_nodes=1, mined_kinds=kinds)


# ----------------------------------------------------------------------
# benchmark JSON (--bench-out) for regression tracking
# ----------------------------------------------------------------------
def bench_results(workloads=BASELINE_WORKLOADS,
                  engines=BASELINE_ENGINES,
                  **overrides) -> Dict:
    """The verified engine grid as a ``repro.bench/2`` document."""
    doc: Dict = {"schema": BENCH_SCHEMA, "workloads": {}}
    for name in workloads:
        entry: Dict = {
            "instructions": compile_workload(name).num_instructions,
            "engines": {},
        }
        for engine in engines:
            if (name, engine) in BASELINE_SKIP:
                continue
            # sfx is the sequence baseline; PAConfig knobs like
            # time_budget do not apply to it
            per_engine = {} if engine == "sfx" else overrides
            result, elapsed = run_engine(name, engine, **per_engine)
            entry["engines"][engine] = {
                "saved": result.saved,
                "rounds": result.rounds,
                "calls": result.call_extractions,
                "crossjumps": result.crossjump_extractions,
                "instructions_after": result.instructions_after,
                "seconds": round(elapsed, 3),
                "lattice_nodes": result.lattice_nodes,
                "workers": getattr(result, "workers", 0),
                "shards": getattr(result, "shards", 0),
                "cache_hits": getattr(result, "cache_hits", 0),
                "lattice_nodes_reused": getattr(
                    result, "lattice_nodes_reused", 0),
            }
            print(f"  {name}/{engine}: saved {result.saved} "
                  f"in {result.rounds} rounds ({elapsed:.1f}s)",
                  file=sys.stderr)
        doc["workloads"][name] = entry
    return doc


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="run the verified benchmark grid and write "
                    "a repro.bench/2 JSON for benchmarks/regress.py",
    )
    parser.add_argument(
        "--bench-out", metavar="FILE", required=True,
        help="output path (e.g. BENCH_all.json)",
    )
    parser.add_argument(
        "--workloads", nargs="+", default=list(BASELINE_WORKLOADS),
        choices=sorted(PROGRAMS),
    )
    parser.add_argument(
        "--engines", nargs="+", default=list(BASELINE_ENGINES),
        choices=ENGINES,
    )
    parser.add_argument("--time-budget", type=float, default=180.0)
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="mine graph-engine cells with the sharded "
                             "scale engine on N worker processes "
                             "(bit-identical savings for any N >= 1; "
                             "default 0 = legacy serial)")
    parser.add_argument("--fragment-cache", metavar="DIR",
                        help="persistent content-addressed fragment "
                             "cache directory for the scale engine")
    parser.add_argument("--force", action="store_true",
                        help="overwrite an existing output file")
    args = parser.parse_args(argv)
    if os.path.exists(args.bench_out) and not args.force:
        parser.error(
            f"refusing to overwrite {args.bench_out} (use --force)"
        )
    if args.fragment_cache and not args.workers:
        args.workers = 1     # a persistent cache implies the scale engine
    overrides = {"time_budget": args.time_budget}
    if args.workers:
        overrides["workers"] = args.workers
        overrides["fragment_cache"] = args.fragment_cache
    doc = bench_results(tuple(args.workloads), tuple(args.engines),
                        **overrides)
    atomic_write_text(
        args.bench_out,
        json.dumps(doc, indent=2, sort_keys=True) + "\n",
    )
    print(f"wrote {args.bench_out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
