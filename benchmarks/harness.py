"""Shared harness for the benchmark suite.

Running the three abstraction engines over all eight workloads is the
expensive part of every table/figure; this module computes it once per
process and caches the outcome, so individual benchmarks only pay for
the unit they actually measure.

Every engine run is verified against the workload's Python reference —
a benchmark row is only reported for *correct* transformations.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro import telemetry
from repro.analysis.tables import Table1Row
from repro.dfg.builder import build_dfgs
from repro.dfg.graph import FLOW_KINDS
from repro.pa.driver import PAConfig, PAResult, run_pa
from repro.pa.sfx import SFXConfig, run_sfx
from repro.workloads import PROGRAMS, compile_workload, verify_workload

#: Engine configurations used for the headline comparison.
ENGINES = ("sfx", "dgspan", "edgar")


@dataclass
class EngineRun:
    saved: int
    rounds: int
    calls: int
    crossjumps: int
    seconds: float
    lattice_nodes: int


@dataclass
class SuiteResults:
    """All engine runs over all workloads."""

    instructions: Dict[str, int] = field(default_factory=dict)
    runs: Dict[Tuple[str, str], EngineRun] = field(default_factory=dict)

    def table1_rows(self) -> List[Table1Row]:
        return [
            Table1Row(
                program=name,
                instructions=self.instructions[name],
                sfx=self.runs[(name, "sfx")].saved,
                dgspan=self.runs[(name, "dgspan")].saved,
                edgar=self.runs[(name, "edgar")].saved,
            )
            for name in PROGRAMS
        ]

    def totals(self) -> Dict[str, int]:
        return {
            engine: sum(
                self.runs[(name, engine)].saved for name in PROGRAMS
            )
            for engine in ENGINES
        }

    def mechanisms(self) -> Dict[str, Tuple[int, int]]:
        out = {}
        for engine in ENGINES:
            calls = sum(self.runs[(n, engine)].calls for n in PROGRAMS)
            xjumps = sum(self.runs[(n, engine)].crossjumps for n in PROGRAMS)
            out[engine] = (calls, xjumps)
        return out


def run_engine(name: str, engine: str, **overrides) -> Tuple[PAResult, float]:
    """Run one engine on one workload, verified; returns (result, secs).

    The run is wrapped in a ``bench.engine_run`` telemetry span and its
    headline numbers are published as a structured event, so a profiled
    benchmark session exports through the same registry as the CLI.
    """
    import time

    module = compile_workload(name)
    started = time.perf_counter()
    with telemetry.span("bench.engine_run", workload=name, engine=engine):
        if engine == "sfx":
            result = run_sfx(module, SFXConfig(**overrides)
                             if overrides else None)
        else:
            overrides.setdefault("time_budget", 180.0)
            result = run_pa(module, PAConfig(miner=engine, **overrides))
    elapsed = time.perf_counter() - started
    verify_workload(name, module)
    telemetry.count("bench.engine_runs")
    telemetry.event(
        "bench.engine_run",
        workload=name,
        engine=engine,
        saved=result.saved,
        rounds=result.rounds,
        seconds=elapsed,
        lattice_nodes=result.lattice_nodes,
    )
    return result, elapsed


@functools.lru_cache(maxsize=1)
def suite_results() -> SuiteResults:
    """The full (verified) engine x workload grid, computed once."""
    results = SuiteResults()
    for name in PROGRAMS:
        results.instructions[name] = compile_workload(name).num_instructions
        for engine in ENGINES:
            result, elapsed = run_engine(name, engine)
            results.runs[(name, engine)] = EngineRun(
                saved=result.saved,
                rounds=result.rounds,
                calls=result.call_extractions,
                crossjumps=result.crossjump_extractions,
                seconds=elapsed,
                lattice_nodes=result.lattice_nodes,
            )
    return results


@functools.lru_cache(maxsize=None)
def workload_dfgs(name: str, flow_only: bool = False):
    """DFG database of one workload (for the shape tables)."""
    module = compile_workload(name)
    kinds = FLOW_KINDS if flow_only else None
    if kinds is None:
        return build_dfgs(module, min_nodes=1)
    return build_dfgs(module, min_nodes=1, mined_kinds=kinds)
