"""§4.2 timing: optimization cost per program.

Paper: DgSpan averages ~50 s and Edgar ~90 s per program on a desktop
machine, with rijndael far above the average (2h32m / 4h22m) because
its denser graphs create "a far more complex and bigger search lattice
with more paths to the fragments".  The absolute numbers are machine-
and implementation-bound; the *shape* — Edgar costs more than DgSpan,
and the search lattice is the cost driver — is what we reproduce.
"""

from repro.pa.driver import PAConfig, run_pa
from repro.workloads import PROGRAMS, compile_workload

from benchmarks.harness import suite_results


def test_timing(benchmark):
    def dgspan_once():
        module = compile_workload("crc")
        return run_pa(module, PAConfig(miner="dgspan"))

    benchmark.pedantic(dgspan_once, rounds=1, iterations=1)

    results = suite_results()
    print()
    print(f"{'program':10s} {'DgSpan':>8s} {'Edgar':>8s} "
          f"{'Edgar lattice':>14s}")
    total_dg = total_ed = 0.0
    for name in PROGRAMS:
        dg = results.runs[(name, "dgspan")]
        ed = results.runs[(name, "edgar")]
        total_dg += dg.seconds
        total_ed += ed.seconds
        print(f"{name:10s} {dg.seconds:7.1f}s {ed.seconds:7.1f}s "
              f"{ed.lattice_nodes:14d}")
    print(f"{'total':10s} {total_dg:7.1f}s {total_ed:7.1f}s")

    # Edgar's embedding bookkeeping costs more than DgSpan's
    # graph counting (paper: 90s vs 50s average)
    assert total_ed > total_dg

    # the most expensive Edgar program is also (one of) the largest
    # lattices: lattice size drives the cost
    slowest = max(PROGRAMS, key=lambda n: results.runs[(n, "edgar")].seconds)
    biggest = max(
        PROGRAMS, key=lambda n: results.runs[(n, "edgar")].lattice_nodes
    )
    by_lattice = sorted(
        PROGRAMS,
        key=lambda n: results.runs[(n, "edgar")].lattice_nodes,
        reverse=True,
    )
    assert slowest in by_lattice[:3], (slowest, biggest)
