"""Figs. 1-5: the running example's 8-vs-7 instruction arithmetic.

The suffix trie finds only the 2-instruction pair in the Fig. 1 block
(outlining it yields 5 + 3 = 8 instructions); the graph miner finds
3-instruction fragments with two non-overlapping embeddings (outlining
yields 3 + 4 = 7).
"""

from repro.binary.program import BasicBlock
from repro.dfg.builder import build_dfg
from repro.dfg.graph import FLOW_KINDS
from repro.isa.assembler import parse_instruction
from repro.mining.edgar import Edgar, non_overlapping_embeddings

FIG1 = [
    "ldr r3, [r1], #4",
    "sub r2, r2, r3",
    "add r4, r2, #4",
    "ldr r3, [r1], #4",
    "sub r2, r2, r3",
    "ldr r3, [r1], #4",
    "add r4, r2, #4",
]


def _longest_repeated_run(texts):
    best = 0
    for length in range(2, len(texts)):
        for start in range(len(texts) - length + 1):
            needle = texts[start:start + length]
            count = sum(
                1 for s in range(len(texts) - length + 1)
                if texts[s:s + length] == needle
            )
            if count >= 2:
                best = max(best, length)
    return best


def test_running_example(benchmark):
    block = BasicBlock(
        instructions=[parse_instruction(t) for t in FIG1]
    )
    dfg = build_dfg(block, mined_kinds=FLOW_KINDS)

    def mine():
        return Edgar(min_support=2, min_nodes=3, max_nodes=3).mine([dfg])

    fragments = benchmark.pedantic(mine, rounds=1, iterations=1)

    # --- suffix-trie view: the pair, leading to 5 + 3 = 8 ------------
    sfx_len = _longest_repeated_run(FIG1)
    assert sfx_len == 2
    after_sfx = (len(FIG1) - 2 * sfx_len + 2) + (sfx_len + 1)
    assert after_sfx == 8

    # --- graph view: a 3-node fragment twice, leading to 3 + 4 = 7 ---
    assert fragments
    best = max(
        fragments,
        key=lambda f: len(non_overlapping_embeddings(f.embeddings)),
    )
    chosen = non_overlapping_embeddings(best.embeddings)
    assert best.num_nodes == 3 and len(chosen) == 2
    after_graph = (len(FIG1) - 2 * 3 + 2) + (3 + 1)
    assert after_graph == 7
    print(f"\nsuffix trie: {after_sfx} instructions after PA; "
          f"graph-based: {after_graph} (paper Figs. 3-5)")
