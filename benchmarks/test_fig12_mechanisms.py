"""Fig. 12: extraction mechanisms used by SFX, DgSpan, and Edgar.

Paper: "in all test constellations, cross jump extraction occurs seldom
since to be applicable, a fragment must end with a (rare) return or
jump instruction.  Otherwise the fragment is moved into a new
procedure."
"""

from repro.analysis.figures import format_fig12

from benchmarks.harness import suite_results


def test_fig12(benchmark):
    results = benchmark.pedantic(suite_results, rounds=1, iterations=1)
    mechanisms = results.mechanisms()
    print()
    print(format_fig12(mechanisms))

    for engine, (calls, crossjumps) in mechanisms.items():
        total = calls + crossjumps
        assert total > 0, engine
        # procedure calls dominate; cross jumps are the rare case
        assert calls >= crossjumps, engine
        assert crossjumps <= total * 0.5, engine
