"""Ablations of the design choices DESIGN.md calls out.

Each ablation runs on a small but representative workload subset so the
whole file stays in benchmark-budget territory.
"""

import pytest

from repro.dfg.graph import FLOW_KINDS, MINED_KINDS
from repro.pa.canonical import fuzzy_potential
from repro.pa.driver import PAConfig, run_pa
from repro.pa.sfx import run_sfx
from repro.workloads import compile_workload, verify_workload

ABLATION_WORKLOADS = ("crc", "dijkstra")


def _edgar(name, **overrides):
    module = compile_workload(name)
    overrides.setdefault("time_budget", 120.0)
    result = run_pa(module, PAConfig(miner="edgar", **overrides))
    verify_workload(name, module)
    return result


class TestAblationMIS:
    """Exact Kumlander-style MIS vs the greedy heuristic."""

    def test_greedy_mis(self, benchmark):
        results = {}
        for name in ABLATION_WORKLOADS:
            exact = _edgar(name)
            greedy = benchmark.pedantic(
                lambda n=name: _edgar(n, mis_exact_limit=0),
                rounds=1, iterations=1,
            ) if name == ABLATION_WORKLOADS[0] else _edgar(
                name, mis_exact_limit=0
            )
            results[name] = (exact.saved, greedy.saved)
        print()
        for name, (exact, greedy) in results.items():
            print(f"{name:10s} exact MIS saved={exact:4d} "
                  f"greedy MIS saved={greedy:4d}")
        for name, (exact, greedy) in results.items():
            # the greedy heuristic may lose occurrences, never gain
            # more than noise from different tie-breaking
            assert greedy <= exact + 2, name


class TestAblationPAPruning:
    """Edgar's PA-specific embedding pruning: same result, same or
    smaller lattice."""

    def test_pa_pruning(self, benchmark):
        name = "crc"
        with_pruning = benchmark.pedantic(
            lambda: _edgar(name, pa_pruning=True), rounds=1, iterations=1
        )
        without = _edgar(name, pa_pruning=False)
        print(f"\npruning on:  saved={with_pruning.saved} "
              f"lattice={with_pruning.lattice_nodes}")
        print(f"pruning off: saved={without.saved} "
              f"lattice={without.lattice_nodes}")
        assert with_pruning.saved == without.saved
        assert with_pruning.lattice_nodes <= without.lattice_nodes


class TestAblationScheduler:
    """§4.2's rijndael explanation: scheduling-induced reordering is
    what blinds the suffix trie; graph PA is immune."""

    def test_scheduler(self, benchmark):
        name = "sha"

        def gap(schedule: bool):
            module = compile_workload(name, schedule=schedule)
            sfx_module = compile_workload(name, schedule=schedule)
            edgar = run_pa(module, PAConfig(miner="edgar",
                                            time_budget=120.0))
            verify_workload(name, module)
            sfx = run_sfx(sfx_module)
            verify_workload(name, sfx_module)
            return edgar.saved, sfx.saved

        scheduled = benchmark.pedantic(
            lambda: gap(True), rounds=1, iterations=1
        )
        unscheduled = gap(False)
        print(f"\nscheduler on:  edgar={scheduled[0]} sfx={scheduled[1]}")
        print(f"scheduler off: edgar={unscheduled[0]} sfx={unscheduled[1]}")
        # the scheduler must never push graph PA below the baseline
        assert scheduled[0] >= scheduled[1]
        # relative to SFX, Edgar's standing is at least as good under
        # scheduling as without it (reordering hurts only the trie)
        assert scheduled[0] - scheduled[1] >= unscheduled[0] - unscheduled[1]


class TestAblationFlowPass:
    """Full-dependence pass vs adding the data-flow projection pass."""

    def test_flow_pass(self, benchmark):
        name = "crc"
        both = benchmark.pedantic(
            lambda: _edgar(name, flow_pass=True), rounds=1, iterations=1
        )
        full_only = _edgar(name, flow_pass=False)
        flow_only = _edgar(name, mined_kinds=FLOW_KINDS, flow_pass=False)
        print(f"\nboth passes:      saved={both.saved}")
        print(f"full-graph only:  saved={full_only.saved}")
        print(f"data-flow only:   saved={flow_only.saved}")
        assert both.saved >= max(full_only.saved, flow_only.saved) - 2


class TestAblationBatch:
    """Batched rounds vs the paper's strict one-extraction-per-round."""

    def test_batch(self, benchmark):
        name = "dijkstra"
        batched = benchmark.pedantic(
            lambda: _edgar(name, batch=True), rounds=1, iterations=1
        )
        strict = _edgar(name, batch=False)
        print(f"\nbatched: saved={batched.saved} rounds={batched.rounds}")
        print(f"strict:  saved={strict.saved} rounds={strict.rounds}")
        assert batched.rounds <= strict.rounds
        assert abs(batched.saved - strict.saved) <= 3


class TestAblationCanonical:
    """Fuzzy canonical matching (paper §5 future work, Fig. 13)."""

    def test_canonical(self, benchmark):
        module = compile_workload("qsort")
        report = benchmark.pedantic(
            lambda: fuzzy_potential(module, max_nodes=5),
            rounds=1, iterations=1,
        )
        print(f"\nexact-match best benefit: {report.exact_best}")
        print(f"canonical-match best benefit: {report.fuzzy_best}")
        print(f"additional fuzzy potential: {report.additional_potential}")
        # canonical matching can only reveal more duplication
        assert report.fuzzy_best >= report.exact_best
        assert report.fuzzy_fragments >= report.exact_fragments
