"""Table 2: instructions with (degree_IN v degree_OUT) > 1.

The paper counts, over all DFGs used for mining, how many instructions
have fan-in or fan-out above one: 8663 of 28691 (~30%).  If all nodes
formed plain chains, suffix tries would find every duplicate that graph
mining finds; the high-fan fraction is what gives graph-based PA its
edge.
"""

from repro.analysis.tables import format_table2
from repro.dfg.stats import fanout_summary
from repro.workloads import PROGRAMS

from benchmarks.harness import workload_dfgs


def test_table2(benchmark):
    def build_and_summarize():
        return {
            name: fanout_summary(workload_dfgs(name))
            for name in PROGRAMS
        }

    per_program = benchmark.pedantic(
        build_and_summarize, rounds=1, iterations=1
    )
    print()
    print(format_table2(per_program))

    total_high = sum(s.high_degree for s in per_program.values())
    total_low = sum(s.low_degree for s in per_program.values())
    fraction = total_high / (total_high + total_low)
    # paper: "more than one third of the nodes have a higher fan-out or
    # a higher fan-in" (8663 of 28691); same bound holds here
    assert fraction > 1 / 3, f"fan fraction {fraction:.2%} too chain-like"
    for name, summary in per_program.items():
        assert summary.high_degree > 0, name
