"""Compare two ``repro.bench/1``/``/2`` JSON files with tolerance bands.

::

    PYTHONPATH=src python benchmarks/harness.py --bench-out fresh.json
    python benchmarks/regress.py BENCH_all.json fresh.json

The committed baseline (``BENCH_all.json``) pins the *result* metrics —
saved instructions, rounds, call/cross-jump mix, final instruction
count — which are deterministic for the baseline grid and must match
exactly; any drift is a correctness regression (or an intentional
change, in which case the baseline is regenerated and committed with
the code that moved it).  Wall-clock time is machine-dependent, so it
only gets a *tolerance band*: more than ``--time-tolerance`` (default
5%) slower than baseline prints a warning, escalated to a failure by
``--fail-on-time`` (for dedicated perf CI on stable hardware).

``repro.bench/2`` adds scale-engine observability fields to every
graph-engine cell (``workers``, ``shards``, ``cache_hits``,
``lattice_nodes_reused``).  They describe *how* a cell was mined, not
the result, so they are soft-compared: drift prints a warning, never a
failure — except ``workers``, whose drift means the two files were not
produced by the same engine configuration and the seconds band is
meaningless, which is still only a warning but a louder one.  A /1 file
simply has no scale fields; comparisons across versions skip them.

Exit status: 0 when every pinned metric matches (warnings allowed),
1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

SCHEMAS = ("repro.bench/1", "repro.bench/2")

#: Metrics pinned exactly; a mismatch fails the comparison.
RESULT_METRICS = (
    "saved", "rounds", "calls", "crossjumps", "instructions_after",
)

#: /2 observability fields: soft-compared (warn on drift, never fail).
SCALE_METRICS = (
    "workers", "shards", "cache_hits", "lattice_nodes_reused",
)


def _load(path: str) -> Dict[str, Any]:
    with open(path) as handle:
        doc = json.load(handle)
    schema = doc.get("schema")
    if schema not in SCHEMAS:
        sys.exit(f"error: {path}: expected schema one of {SCHEMAS}, "
                 f"got {schema!r}")
    return doc


def compare(baseline: Dict[str, Any], current: Dict[str, Any],
            time_tolerance: float = 0.05,
            fail_on_time: bool = False):
    """Return ``(failures, warnings)`` between two bench documents.

    Every workload/engine cell of the *baseline* must be present in
    *current* with identical result metrics; extra cells in *current*
    are ignored (they have no baseline to drift from).
    """
    failures: List[str] = []
    warnings: List[str] = []
    for name, base_entry in sorted(baseline["workloads"].items()):
        cur_entry = current["workloads"].get(name)
        if cur_entry is None:
            failures.append(f"{name}: workload missing from current run")
            continue
        if cur_entry.get("instructions") != base_entry.get("instructions"):
            failures.append(
                f"{name}: instruction count "
                f"{base_entry.get('instructions')} -> "
                f"{cur_entry.get('instructions')} (workload changed?)"
            )
        for engine, base_cell in sorted(base_entry["engines"].items()):
            cur_cell = cur_entry.get("engines", {}).get(engine)
            if cur_cell is None:
                failures.append(
                    f"{name}/{engine}: engine missing from current run"
                )
                continue
            for metric in RESULT_METRICS:
                base_value = base_cell.get(metric)
                cur_value = cur_cell.get(metric)
                if cur_value != base_value:
                    failures.append(
                        f"{name}/{engine}: {metric} changed "
                        f"{base_value} -> {cur_value}"
                    )
            for metric in SCALE_METRICS:
                base_value = base_cell.get(metric)
                cur_value = cur_cell.get(metric)
                if base_value is None or cur_value is None:
                    continue       # /1 file on one side: nothing to drift
                if cur_value != base_value:
                    warnings.append(
                        f"{name}/{engine}: {metric} drifted "
                        f"{base_value} -> {cur_value}"
                        + (" (different engine configuration; the "
                           "seconds band is not comparable)"
                           if metric == "workers" else "")
                    )
            base_secs = base_cell.get("seconds")
            cur_secs = cur_cell.get("seconds")
            if base_secs and cur_secs is not None:
                limit = base_secs * (1.0 + time_tolerance)
                if cur_secs > limit:
                    message = (
                        f"{name}/{engine}: {cur_secs:.3f}s is "
                        f"{cur_secs / base_secs - 1.0:+.1%} vs baseline "
                        f"{base_secs:.3f}s "
                        f"(tolerance {time_tolerance:.0%})"
                    )
                    if fail_on_time:
                        failures.append(message)
                    else:
                        warnings.append(message)
    return failures, warnings


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="compare two repro.bench/1 or /2 files; exit 1 "
                    "when a pinned result metric drifted",
    )
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly produced JSON")
    parser.add_argument(
        "--time-tolerance", type=float, default=0.05, metavar="FRAC",
        help="allowed wall-clock slowdown before warning (default 0.05)",
    )
    parser.add_argument(
        "--fail-on-time", action="store_true",
        help="escalate wall-clock warnings to failures",
    )
    args = parser.parse_args(argv)
    failures, warnings = compare(
        _load(args.baseline), _load(args.current),
        time_tolerance=args.time_tolerance,
        fail_on_time=args.fail_on_time,
    )
    for message in warnings:
        print(f"WARN {message}", file=sys.stderr)
    for message in failures:
        print(f"FAIL {message}", file=sys.stderr)
    if failures:
        print(f"{len(failures)} regression(s) vs {args.baseline}",
              file=sys.stderr)
        return 1
    print(f"ok: {args.current} matches {args.baseline}"
          + (f" ({len(warnings)} timing warning(s))" if warnings else ""),
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
