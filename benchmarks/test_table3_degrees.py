"""Table 3: in/out-degree histogram of all instructions.

Computed on the data-flow projection (the paper's Fig. 2-style DFG);
the full dependence graph adds anti/output ordering edges that inflate
degrees beyond what the paper tabulates (Table 2 reports that view).

Paper shape: the overwhelming majority of nodes has degree 0 or 1,
counts decay with degree, a nonempty >=4 tail exists, and rijndael has
a visibly fatter high-degree fraction than the other programs — the
reason its lattice (and mining time) is the largest.
"""

from repro.analysis.tables import format_table3
from repro.dfg.stats import degree_histogram
from repro.workloads import PROGRAMS

from benchmarks.harness import workload_dfgs


def test_table3(benchmark):
    def build():
        return {
            name: degree_histogram(workload_dfgs(name, flow_only=True))
            for name in PROGRAMS
        }

    per_program = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print(format_table3(per_program))

    for name, hist in per_program.items():
        in0, in1, in2, in3, in4 = hist.in_counts
        assert in0 + in1 > in2 + in3 + in4, name  # low degrees dominate
        assert in1 > in2 >= in3, name             # decaying tail

    # rijndael's dense-table code has the fattest high-degree share
    def high_share(hist):
        total = hist.total_nodes
        return (hist.in_counts[2] + hist.in_counts[3] + hist.in_counts[4]
                + hist.out_counts[2] + hist.out_counts[3]
                + hist.out_counts[4]) / total

    shares = {name: high_share(h) for name, h in per_program.items()}
    top = max(shares, key=shares.get)
    assert shares["rijndael"] >= sorted(shares.values())[-3], (
        f"rijndael should be among the densest, got {shares}"
    )
